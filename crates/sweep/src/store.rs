//! Content-addressed on-disk store for completed cell results.
//!
//! Layout: `<root>/<first 2 hex>/<fingerprint>.cell`, one file per
//! completed cell. Each file carries the cell's full key material
//! (workload, seed, scale, behavior revision, canonical config JSON)
//! followed by the `SimStats` JSON:
//!
//! ```text
//! # pp-sweep cell v1
//! <key material…>
//! ---stats---
//! { …SimStats::to_json… }
//! ```
//!
//! Loads re-verify the stored key material against the requesting
//! cell's, so a fingerprint collision or a schema change degrades to a
//! cache miss — never a wrong result. Writes go through a same-
//! directory temp file and an atomic rename, so a sweep killed
//! mid-write leaves either a complete entry or no entry (the resume
//! protocol depends on this).

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use pp_core::SimStats;

use crate::cell::SweepCell;

/// File-format magic of a cell entry.
const MAGIC: &str = "# pp-sweep cell v1";
/// Separator between key material and stats JSON.
const SEPARATOR: &str = "\n---stats---\n";
/// Marker embedded in every in-flight temp-file name; the orphan sweep
/// keys on it.
const TMP_MARKER: &str = ".cell.tmp.";

/// Monotonic write counter appended to temp-file names. The PID alone
/// is not unique across hosts sharing one cache directory over a
/// network filesystem (the pp-serve scenario), and host time or
/// randomness would trip the determinism lint; a process-wide counter
/// keeps concurrent writers — including two stores in one process —
/// from clobbering each other's in-flight temp file.
static WRITE_NONCE: AtomicU64 = AtomicU64::new(0);

/// A content-addressed store of completed cell results under one root
/// directory.
#[derive(Debug, Clone)]
pub struct ResultStore {
    root: PathBuf,
}

impl ResultStore {
    /// A store rooted at `root` (created lazily on first save).
    ///
    /// Opening a store sweeps temp-file orphans left by writers that
    /// crashed between `write` and `rename` — without this they would
    /// accumulate forever, since the normal path only cleans up on
    /// rename *error*. Open stores before starting heavy concurrent
    /// writes: the sweep cannot tell a stale orphan from another
    /// process's in-flight write (a clobbered writer degrades to a
    /// save error and a rerun, never a wrong result).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        let store = ResultStore { root: root.into() };
        store.sweep_orphans();
        store
    }

    /// Delete stale in-flight temp files under the store root,
    /// returning how many were removed. Best-effort: I/O errors are
    /// ignored (an unremovable orphan is wasted disk, not a
    /// correctness problem).
    pub fn sweep_orphans(&self) -> usize {
        let Ok(shards) = std::fs::read_dir(&self.root) else {
            return 0;
        };
        shards
            .filter_map(std::result::Result::ok)
            .filter_map(|d| std::fs::read_dir(d.path()).ok())
            .flatten()
            .filter_map(std::result::Result::ok)
            .filter(|f| {
                let name = f.file_name();
                let name = name.to_string_lossy();
                name.starts_with('.') && name.contains(TMP_MARKER)
            })
            .filter(|f| std::fs::remove_file(f.path()).is_ok())
            .count()
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The entry path for a cell.
    pub fn path_for(&self, cell: &SweepCell) -> PathBuf {
        let fp = cell.fingerprint();
        self.root.join(&fp[..2]).join(format!("{fp}.cell"))
    }

    /// Load the cached stats for `cell`, or `None` on any miss:
    /// no entry, unreadable entry, magic/schema mismatch, key-material
    /// mismatch (fingerprint collision), or unparsable stats. A
    /// corrupt entry is deleted so the rerun can overwrite it cleanly.
    pub fn load(&self, cell: &SweepCell) -> Option<SimStats> {
        let path = self.path_for(cell);
        let text = std::fs::read_to_string(&path).ok()?;
        match Self::parse_entry(&text, cell) {
            Some(stats) => Some(stats),
            None => {
                // Truncated write (pre-atomic-rename crash cannot cause
                // this, but disk corruption can) or stale schema:
                // clear it so the store self-heals.
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }

    fn parse_entry(text: &str, cell: &SweepCell) -> Option<SimStats> {
        let body = text.strip_prefix(MAGIC)?.strip_prefix('\n')?;
        let (key, stats_json) = body.split_once(SEPARATOR)?;
        if key != cell.key_material() {
            return None;
        }
        SimStats::from_json(stats_json).ok()
    }

    /// Persist a completed cell. Atomic: readers (including concurrent
    /// sweeps sharing the cache) see either the complete entry or
    /// nothing.
    pub fn save(&self, cell: &SweepCell, stats: &SimStats) -> io::Result<()> {
        let path = self.path_for(cell);
        let dir = path.parent().expect("entry path has a parent");
        std::fs::create_dir_all(dir)?;
        let entry = format!(
            "{MAGIC}\n{}{SEPARATOR}{}",
            cell.key_material(),
            stats.to_json()
        );
        let tmp = dir.join(format!(
            ".{}.tmp.{}.{}",
            path.file_name()
                .expect("entry path has a file name")
                .to_string_lossy(),
            std::process::id(),
            WRITE_NONCE.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::write(&tmp, &entry)?;
        let renamed = std::fs::rename(&tmp, &path);
        if renamed.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        renamed
    }

    /// Number of entries currently in the store (a maintenance/debug
    /// helper; O(entries)).
    pub fn len(&self) -> usize {
        let Ok(shards) = std::fs::read_dir(&self.root) else {
            return 0;
        };
        shards
            .filter_map(std::result::Result::ok)
            .filter_map(|d| std::fs::read_dir(d.path()).ok())
            .flatten()
            .filter_map(std::result::Result::ok)
            .filter(|f| f.path().extension().is_some_and(|e| e == "cell"))
            .count()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::SimConfig;
    use pp_workloads::Workload;

    fn tmp_root(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pp-sweep-store-{}-{name}", std::process::id()))
    }

    fn cell() -> SweepCell {
        SweepCell {
            workload: Workload::Compress,
            seed: None,
            scale: 50,
            config: SimConfig::baseline(),
        }
    }

    fn stats() -> SimStats {
        SimStats {
            cycles: 42,
            committed_instructions: 100,
            ..Default::default()
        }
    }

    #[test]
    fn save_load_roundtrip_is_exact() {
        let root = tmp_root("roundtrip");
        let store = ResultStore::new(&root);
        let c = cell();
        assert!(store.load(&c).is_none());
        store.save(&c, &stats()).unwrap();
        let loaded = store.load(&c).expect("hit after save");
        assert_eq!(loaded, stats());
        assert_eq!(loaded.to_json(), stats().to_json());
        assert_eq!(store.len(), 1);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn key_material_mismatch_is_a_miss() {
        let root = tmp_root("mismatch");
        let store = ResultStore::new(&root);
        let c = cell();
        store.save(&c, &stats()).unwrap();
        // Forge a different cell's content into this cell's address —
        // the key-material comparison must reject it.
        let path = store.path_for(&c);
        let forged = std::fs::read_to_string(store.path_for(&c))
            .unwrap()
            .replace("scale: 50", "scale: 51");
        std::fs::write(&path, forged).unwrap();
        assert!(store.load(&c).is_none(), "forged entry must not load");
        // And the corrupt entry was cleared for self-healing.
        assert!(!path.exists());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn truncated_entry_is_a_miss_and_self_heals() {
        let root = tmp_root("truncated");
        let store = ResultStore::new(&root);
        let c = cell();
        store.save(&c, &stats()).unwrap();
        let path = store.path_for(&c);
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(store.load(&c).is_none());
        assert!(!path.exists(), "corrupt entry should be removed");
        // A fresh save works again.
        store.save(&c, &stats()).unwrap();
        assert!(store.load(&c).is_some());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn open_sweeps_orphans_and_load_heals_truncation() {
        let root = tmp_root("crash");
        // A prior sweep completed one entry, left two temp orphans
        // (killed between write and rename), and a later fault
        // truncated a second entry.
        let setup = ResultStore::new(&root);
        let c = cell();
        setup.save(&c, &stats()).unwrap();
        let shard = setup.path_for(&c).parent().unwrap().to_path_buf();
        let orphan_a = shard.join(format!(".{}.cell.tmp.1234.0", c.fingerprint()));
        let orphan_b = shard.join(".deadbeef.cell.tmp.1234.1");
        std::fs::write(&orphan_a, "half-written").unwrap();
        std::fs::write(&orphan_b, "half-written").unwrap();
        let truncated = {
            let mut other = cell();
            other.scale = 51;
            setup.save(&other, &stats()).unwrap();
            let p = setup.path_for(&other);
            let full = std::fs::read_to_string(&p).unwrap();
            std::fs::write(&p, &full[..full.len() / 3]).unwrap();
            (other, p)
        };

        // Reopening the store heals the orphans…
        let store = ResultStore::new(&root);
        assert!(!orphan_a.exists(), "stale orphan must be swept on open");
        assert!(!orphan_b.exists(), "stale orphan must be swept on open");
        // …without touching the intact entry…
        assert_eq!(store.load(&c), Some(stats()));
        // …and the truncated entry heals on load.
        assert!(store.load(&truncated.0).is_none());
        assert!(!truncated.1.exists(), "truncated entry must self-heal");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn two_stores_racing_on_one_directory_never_clobber() {
        // Two stores over the same directory model two workers sharing
        // one cache (pp-serve); with a PID-only temp suffix their
        // in-flight temp files could collide, so one writer's rename
        // would publish the other's (possibly interleaved) bytes. The
        // write nonce keeps every in-flight temp file distinct.
        let root = tmp_root("race");
        let c = cell();
        // Open both stores up front: the orphan sweep on open cannot
        // distinguish a live writer's temp file from a stale one.
        let stores = [ResultStore::new(&root), ResultStore::new(&root)];
        let writers: Vec<_> = stores
            .into_iter()
            .map(|store| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        store.save(&c, &stats()).unwrap();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        let store = ResultStore::new(&root);
        assert_eq!(store.load(&c), Some(stats()));
        assert_eq!(store.len(), 1);
        assert_eq!(store.sweep_orphans(), 0, "no temp files may survive");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn entries_are_sharded_by_fingerprint_prefix() {
        let store = ResultStore::new(tmp_root("shard"));
        let c = cell();
        let p = store.path_for(&c);
        let fp = c.fingerprint();
        assert!(p.ends_with(format!("{}/{fp}.cell", &fp[..2])));
    }
}
