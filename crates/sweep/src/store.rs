//! Content-addressed on-disk store for completed cell results.
//!
//! Layout: `<root>/<first 2 hex>/<fingerprint>.cell`, one file per
//! completed cell. Each file carries the cell's full key material
//! (workload, seed, scale, behavior revision, canonical config JSON)
//! followed by the `SimStats` JSON:
//!
//! ```text
//! # pp-sweep cell v1
//! <key material…>
//! ---stats---
//! { …SimStats::to_json… }
//! ```
//!
//! Loads re-verify the stored key material against the requesting
//! cell's, so a fingerprint collision or a schema change degrades to a
//! cache miss — never a wrong result. Writes go through a same-
//! directory temp file and an atomic rename, so a sweep killed
//! mid-write leaves either a complete entry or no entry (the resume
//! protocol depends on this).

use std::io;
use std::path::{Path, PathBuf};

use pp_core::SimStats;

use crate::cell::SweepCell;

/// File-format magic of a cell entry.
const MAGIC: &str = "# pp-sweep cell v1";
/// Separator between key material and stats JSON.
const SEPARATOR: &str = "\n---stats---\n";

/// A content-addressed store of completed cell results under one root
/// directory.
#[derive(Debug, Clone)]
pub struct ResultStore {
    root: PathBuf,
}

impl ResultStore {
    /// A store rooted at `root` (created lazily on first save).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        ResultStore { root: root.into() }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The entry path for a cell.
    pub fn path_for(&self, cell: &SweepCell) -> PathBuf {
        let fp = cell.fingerprint();
        self.root.join(&fp[..2]).join(format!("{fp}.cell"))
    }

    /// Load the cached stats for `cell`, or `None` on any miss:
    /// no entry, unreadable entry, magic/schema mismatch, key-material
    /// mismatch (fingerprint collision), or unparsable stats. A
    /// corrupt entry is deleted so the rerun can overwrite it cleanly.
    pub fn load(&self, cell: &SweepCell) -> Option<SimStats> {
        let path = self.path_for(cell);
        let text = std::fs::read_to_string(&path).ok()?;
        match Self::parse_entry(&text, cell) {
            Some(stats) => Some(stats),
            None => {
                // Truncated write (pre-atomic-rename crash cannot cause
                // this, but disk corruption can) or stale schema:
                // clear it so the store self-heals.
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }

    fn parse_entry(text: &str, cell: &SweepCell) -> Option<SimStats> {
        let body = text.strip_prefix(MAGIC)?.strip_prefix('\n')?;
        let (key, stats_json) = body.split_once(SEPARATOR)?;
        if key != cell.key_material() {
            return None;
        }
        SimStats::from_json(stats_json).ok()
    }

    /// Persist a completed cell. Atomic: readers (including concurrent
    /// sweeps sharing the cache) see either the complete entry or
    /// nothing.
    pub fn save(&self, cell: &SweepCell, stats: &SimStats) -> io::Result<()> {
        let path = self.path_for(cell);
        let dir = path.parent().expect("entry path has a parent");
        std::fs::create_dir_all(dir)?;
        let entry = format!(
            "{MAGIC}\n{}{SEPARATOR}{}",
            cell.key_material(),
            stats.to_json()
        );
        let tmp = dir.join(format!(
            ".{}.tmp.{}",
            path.file_name()
                .expect("entry path has a file name")
                .to_string_lossy(),
            std::process::id(),
        ));
        std::fs::write(&tmp, &entry)?;
        let renamed = std::fs::rename(&tmp, &path);
        if renamed.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        renamed
    }

    /// Number of entries currently in the store (a maintenance/debug
    /// helper; O(entries)).
    pub fn len(&self) -> usize {
        let Ok(shards) = std::fs::read_dir(&self.root) else {
            return 0;
        };
        shards
            .filter_map(std::result::Result::ok)
            .filter_map(|d| std::fs::read_dir(d.path()).ok())
            .flatten()
            .filter_map(std::result::Result::ok)
            .filter(|f| f.path().extension().is_some_and(|e| e == "cell"))
            .count()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::SimConfig;
    use pp_workloads::Workload;

    fn tmp_root(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pp-sweep-store-{}-{name}", std::process::id()))
    }

    fn cell() -> SweepCell {
        SweepCell {
            workload: Workload::Compress,
            seed: None,
            scale: 50,
            config: SimConfig::baseline(),
        }
    }

    fn stats() -> SimStats {
        SimStats {
            cycles: 42,
            committed_instructions: 100,
            ..Default::default()
        }
    }

    #[test]
    fn save_load_roundtrip_is_exact() {
        let root = tmp_root("roundtrip");
        let store = ResultStore::new(&root);
        let c = cell();
        assert!(store.load(&c).is_none());
        store.save(&c, &stats()).unwrap();
        let loaded = store.load(&c).expect("hit after save");
        assert_eq!(loaded, stats());
        assert_eq!(loaded.to_json(), stats().to_json());
        assert_eq!(store.len(), 1);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn key_material_mismatch_is_a_miss() {
        let root = tmp_root("mismatch");
        let store = ResultStore::new(&root);
        let c = cell();
        store.save(&c, &stats()).unwrap();
        // Forge a different cell's content into this cell's address —
        // the key-material comparison must reject it.
        let path = store.path_for(&c);
        let forged = std::fs::read_to_string(store.path_for(&c))
            .unwrap()
            .replace("scale: 50", "scale: 51");
        std::fs::write(&path, forged).unwrap();
        assert!(store.load(&c).is_none(), "forged entry must not load");
        // And the corrupt entry was cleared for self-healing.
        assert!(!path.exists());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn truncated_entry_is_a_miss_and_self_heals() {
        let root = tmp_root("truncated");
        let store = ResultStore::new(&root);
        let c = cell();
        store.save(&c, &stats()).unwrap();
        let path = store.path_for(&c);
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(store.load(&c).is_none());
        assert!(!path.exists(), "corrupt entry should be removed");
        // A fresh save works again.
        store.save(&c, &stats()).unwrap();
        assert!(store.load(&c).is_some());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn entries_are_sharded_by_fingerprint_prefix() {
        let store = ResultStore::new(tmp_root("shard"));
        let c = cell();
        let p = store.path_for(&c);
        let fp = c.fingerprint();
        assert!(p.ends_with(format!("{}/{fp}.cell", &fp[..2])));
    }
}
