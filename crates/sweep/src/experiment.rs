//! The `Experiment` trait: a named sweep grid plus a pure render step.
//!
//! Every table and figure in the evaluation is an `Experiment`: it
//! declares its grid of [`SweepCell`]s, the engine runs (or cache-serves)
//! them, and `render` turns completed results into stdout text and named
//! artifact files. Because `render` is pure — results in, strings out —
//! a fully-cached rerun reproduces its output byte for byte.

use std::io;
use std::path::Path;

use crate::cell::{CellResult, SweepCell};
use crate::engine::{SweepEngine, SweepReport};
use crate::error::CellError;

/// A named, renderable sweep.
pub trait Experiment: Sync {
    /// Registry key and CLI subcommand argument (e.g. `"fig9"`).
    fn name(&self) -> &'static str;

    /// One-line description for `sweep list`.
    fn description(&self) -> &'static str;

    /// The sweep grid. An experiment that does not map onto
    /// (workload, config) cells — e.g. one that drives the reference
    /// emulator directly — returns an empty grid and does its work in
    /// [`Self::render`]; such experiments are not cached.
    fn grid(&self) -> Vec<SweepCell>;

    /// Turn completed cells (grid order, one per grid entry) into
    /// output. Only called when **every** grid cell completed, so
    /// renderers can index `results` positionally without checking.
    fn render(&self, results: &[CellResult]) -> Rendered;
}

/// What an experiment produced.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Rendered {
    /// Human-readable report for stdout.
    pub stdout: String,
    /// Artifact files as `(relative file name, contents)` — CSVs for
    /// figures, JSON for calibration dumps.
    pub artifacts: Vec<(String, String)>,
}

impl Rendered {
    /// Just stdout text, no artifacts.
    pub fn text(stdout: impl Into<String>) -> Self {
        Rendered {
            stdout: stdout.into(),
            artifacts: Vec::new(),
        }
    }

    /// Add an artifact file.
    #[must_use]
    pub fn with_artifact(mut self, name: impl Into<String>, contents: impl Into<String>) -> Self {
        self.artifacts.push((name.into(), contents.into()));
        self
    }

    /// Write every artifact under `out_dir` (created if needed),
    /// returning the written paths.
    pub fn write_artifacts(&self, out_dir: &Path) -> io::Result<Vec<std::path::PathBuf>> {
        let mut written = Vec::with_capacity(self.artifacts.len());
        if !self.artifacts.is_empty() {
            std::fs::create_dir_all(out_dir)?;
        }
        for (name, contents) in &self.artifacts {
            let path = out_dir.join(name);
            std::fs::write(&path, contents)?;
            written.push(path);
        }
        Ok(written)
    }
}

/// Outcome of driving one experiment through the engine.
#[derive(Debug)]
pub enum ExperimentOutcome {
    /// Every cell completed; the rendered output plus the run report
    /// (for cache/telemetry accounting).
    Rendered(Rendered, SweepReport),
    /// One or more cells failed or were skipped; rendering was not
    /// attempted. The report still holds every completed cell.
    Incomplete(Vec<CellError>, SweepReport),
}

/// Run `experiment` through `engine`: sweep its grid, and render iff
/// every cell completed.
pub fn run_experiment(experiment: &dyn Experiment, engine: &SweepEngine) -> ExperimentOutcome {
    let grid = experiment.grid();
    let report = engine.run(&grid);
    if report.all_completed() {
        let results = report.completed_owned();
        ExperimentOutcome::Rendered(experiment.render(&results), report)
    } else {
        ExperimentOutcome::Incomplete(report.errors.clone(), report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::SimConfig;
    use pp_workloads::Workload;

    struct Doubler;

    impl Experiment for Doubler {
        fn name(&self) -> &'static str {
            "doubler"
        }
        fn description(&self) -> &'static str {
            "test experiment"
        }
        fn grid(&self) -> Vec<SweepCell> {
            vec![SweepCell {
                workload: Workload::Compress,
                seed: None,
                scale: 40,
                config: SimConfig::baseline(),
            }]
        }
        fn render(&self, results: &[CellResult]) -> Rendered {
            Rendered::text(format!("cycles={}", results[0].stats.cycles))
                .with_artifact("doubler.csv", "a,b\n1,2\n")
        }
    }

    #[test]
    fn run_experiment_renders_on_success() {
        match run_experiment(&Doubler, &SweepEngine::new().with_workers(1)) {
            ExperimentOutcome::Rendered(r, report) => {
                assert!(r.stdout.starts_with("cycles="));
                assert_eq!(r.artifacts.len(), 1);
                assert!(report.all_completed());
            }
            ExperimentOutcome::Incomplete(errors, _) => panic!("unexpected failure: {errors:?}"),
        }
    }

    #[test]
    fn run_experiment_reports_failures_instead_of_rendering() {
        struct Broken;
        impl Experiment for Broken {
            fn name(&self) -> &'static str {
                "broken"
            }
            fn description(&self) -> &'static str {
                "always hits the cycle limit"
            }
            fn grid(&self) -> Vec<SweepCell> {
                let mut config = SimConfig::baseline();
                config.max_cycles = 10;
                vec![SweepCell {
                    workload: Workload::Compress,
                    seed: None,
                    scale: 40,
                    config,
                }]
            }
            fn render(&self, _: &[CellResult]) -> Rendered {
                panic!("render must not be called for incomplete sweeps")
            }
        }
        match run_experiment(&Broken, &SweepEngine::new().with_workers(1)) {
            ExperimentOutcome::Rendered(..) => panic!("should not render"),
            ExperimentOutcome::Incomplete(errors, _) => {
                assert_eq!(errors.len(), 1);
                assert!(errors[0].to_string().contains("workload compress"));
            }
        }
    }

    #[test]
    fn artifacts_write_under_out_dir() {
        let dir = std::env::temp_dir().join(format!("pp-sweep-artifacts-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let r = Rendered::text("hi").with_artifact("x.csv", "1,2\n");
        let written = r.write_artifacts(&dir).unwrap();
        assert_eq!(written.len(), 1);
        assert_eq!(std::fs::read_to_string(&written[0]).unwrap(), "1,2\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}
