//! # pp-bench — Criterion benchmarks for the PolyPath reproduction
//!
//! Two suites (see `benches/`):
//!
//! * `paper_figures` — one benchmark group per table/figure of the
//!   paper's evaluation, exercising the exact simulation configurations
//!   each experiment runs (at reduced workload scale, so `cargo bench`
//!   stays tractable). The *full-scale* tables are produced by the
//!   `pp-experiments` binaries; these benches track the simulator cost of
//!   regenerating them and catch performance regressions.
//! * `components` — microbenchmarks of the core mechanisms: CTX tag
//!   hierarchy comparison, history position allocation, gshare and JRS
//!   table access, window kill broadcasts, and end-to-end simulated
//!   cycles per second.
//! * `kernel` — end-to-end simulated-KIPS over the `run_all` workload
//!   set, the criterion twin of the `bench_kernel` binary that maintains
//!   `BENCH_kernel.json` (see DESIGN.md, "Performance methodology").
//!
//! Helpers shared by the suites live here.

use pp_core::{SimConfig, SimStats, Simulator};
use pp_workloads::Workload;

/// Reduced workload scale used by the figure benches.
pub fn bench_scale(w: Workload) -> u64 {
    (w.default_scale() / 50).max(4)
}

/// Build-and-run one workload under one configuration at bench scale.
pub fn simulate(w: Workload, cfg: &SimConfig) -> SimStats {
    let program = w.build(bench_scale(w));
    Simulator::new(&program, cfg.clone()).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_experiments::{named_config, Config};

    #[test]
    fn bench_scale_is_small_but_nonzero() {
        for w in Workload::ALL {
            let s = bench_scale(w);
            assert!(s >= 4);
            assert!(s < w.default_scale());
        }
    }

    #[test]
    fn simulate_runs_at_bench_scale() {
        let stats = simulate(Workload::Vortex, &named_config(Config::Monopath, 12));
        assert!(stats.committed_instructions > 0);
        assert!(!stats.hit_cycle_limit);
    }
}
