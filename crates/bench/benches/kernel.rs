//! Kernel throughput: simulated instructions per host second over the
//! `run_all` workload set — the criterion twin of the offline
//! `bench_kernel` binary.
//!
//! Criterion gives statistics (medians, change detection against the
//! previous run); the `pp-experiments` `bench_kernel` binary gives the
//! committed `BENCH_kernel.json` artifact and works without crates.io
//! access. Both exercise the identical configurations so a regression in
//! one shows in the other:
//!
//! ```sh
//! # registry available (CI):
//! cargo bench --manifest-path crates/bench/Cargo.toml --bench kernel
//! # offline artifact refresh:
//! cargo run --release -p pp-experiments --bin bench_kernel
//! ```
//!
//! `Throughput::Elements` is set to the committed instruction count, so
//! criterion's `elem/s` column *is* simulated instructions per second
//! (KIPS × 1000).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use pp_bench::{bench_scale, simulate};
use pp_experiments::{named_config, Config};
use pp_workloads::Workload;

/// Same configuration triple as `bench_kernel` / the golden suite.
const KERNEL_CONFIGS: [(Config, &str); 3] = [
    (Config::Monopath, "monopath"),
    (Config::SeeJrs, "see_jrs"),
    (Config::DualJrs, "dual_jrs"),
];

fn kernel_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel");
    g.sample_size(10);
    for (config, key) in KERNEL_CONFIGS {
        let cfg = named_config(config, 10);
        for w in Workload::ALL {
            let committed = simulate(w, &cfg).committed_instructions;
            g.throughput(Throughput::Elements(committed));
            g.bench_function(format!("{key}/{}", w.name()), |b| {
                b.iter(|| black_box(simulate(black_box(w), black_box(&cfg))))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, kernel_throughput);
criterion_main!(benches);
