//! Microbenchmarks of the PolyPath core mechanisms.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use pp_core::{SimConfig, Simulator};
use pp_ctx::{CtxTag, PositionAllocator};
use pp_predictor::{Gshare, Jrs, JrsConfig};
use pp_workloads::Workload;

/// The CTX hierarchy comparator (paper Fig. 5) — the operation every
/// window entry performs on each branch resolution.
fn ctx_tag_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("ctx_tag");
    let deep = (0..32).fold(CtxTag::root(), |t, i| t.with_position(i, i % 3 == 0));
    let wrong = CtxTag::root().with_position(0, true).with_position(5, false);

    g.throughput(Throughput::Elements(1));
    g.bench_function("is_descendant_or_equal", |b| {
        b.iter(|| black_box(deep.is_descendant_or_equal(black_box(&wrong))))
    });
    g.bench_function("with_position", |b| {
        let base = CtxTag::root().with_position(1, true);
        b.iter(|| black_box(black_box(base).with_position(40, false)))
    });
    g.bench_function("invalidate", |b| {
        b.iter(|| {
            let mut t = black_box(deep);
            t.invalidate(black_box(16));
            black_box(t)
        })
    });
    g.finish();
}

/// History position allocation with wrap-around reuse (§3.2.2).
fn position_allocator(c: &mut Criterion) {
    c.bench_function("position_allocator/cycle", |b| {
        let mut alloc = PositionAllocator::new(64);
        let mut live = std::collections::VecDeque::new();
        b.iter(|| {
            if live.len() >= 48 {
                alloc.free(live.pop_front().expect("live"));
            }
            live.push_back(alloc.allocate().expect("has room"));
        })
    });
}

/// Branch predictor and confidence estimator table access.
fn predictor_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("predictor");
    g.throughput(Throughput::Elements(1));

    let mut gshare = Gshare::new(14);
    let mut i = 0u64;
    g.bench_function("gshare_predict_update", |b| {
        b.iter(|| {
            i = i.wrapping_add(0x9e3779b9);
            let pc = (i as usize >> 3) & 0xffff;
            let pred = gshare.predict(pc, i);
            gshare.update(pc, i, pred ^ (i & 64 == 0));
            black_box(pred)
        })
    });

    let mut jrs = Jrs::new(JrsConfig::paper_baseline());
    g.bench_function("jrs_estimate_update", |b| {
        b.iter(|| {
            i = i.wrapping_add(0x61c88647);
            let pc = (i as usize >> 5) & 0xffff;
            let conf = jrs.estimate(pc, i, i & 2 == 0);
            jrs.update(pc, i, i & 2 == 0, i & 32 != 0);
            black_box(conf)
        })
    });
    g.finish();
}

/// End-to-end simulator throughput: simulated instructions per second on
/// the baseline machine (monopath and SEE).
fn simulator_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    for (name, cfg) in [
        ("monopath", SimConfig::monopath_baseline()),
        ("see", SimConfig::baseline()),
    ] {
        let program = Workload::Compress.build(60);
        let committed = Simulator::new(&program, cfg.clone()).run().committed_instructions;
        g.throughput(Throughput::Elements(committed));
        g.bench_function(name, |b| {
            b.iter(|| black_box(Simulator::new(&program, cfg.clone()).run()))
        });
    }
    g.finish();
}

criterion_group! {
    name = components;
    config = Criterion::default();
    targets = ctx_tag_ops, position_allocator, predictor_tables, simulator_throughput
}
criterion_main!(components);
