//! One Criterion group per table/figure of the paper's evaluation.
//!
//! Each benchmark runs the exact simulator configuration the
//! corresponding `pp-experiments` binary uses to regenerate the artifact,
//! on a representative workload at reduced scale. `cargo bench` therefore
//! exercises every experiment code path end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pp_bench::{bench_scale, simulate};
use pp_core::{ExecMode, FuConfig, PredictorKind};
use pp_experiments::{harmonic_mean, named_config, Config};
use pp_workloads::Workload;

fn settings(c: &mut Criterion) -> &mut Criterion {
    c
}

/// Table 1: functional characterization of a workload.
fn table1(c: &mut Criterion) {
    let mut g = settings(c).benchmark_group("table1");
    for w in [Workload::Compress, Workload::Go, Workload::Vortex] {
        g.bench_function(w.name(), |b| {
            b.iter(|| black_box(w.characterize(bench_scale(w))))
        });
    }
    g.finish();
}

/// Fig. 8: the six baseline configurations on the most interesting
/// workload (go: largest SEE effect).
fn fig8(c: &mut Criterion) {
    let mut g = settings(c).benchmark_group("fig8_baseline");
    for cfg in [
        Config::Monopath,
        Config::SeeJrs,
        Config::SeeOracle,
        Config::DualJrs,
        Config::DualOracle,
        Config::Oracle,
    ] {
        g.bench_function(cfg.label(), |b| {
            let machine = named_config(cfg, 14);
            b.iter(|| black_box(simulate(Workload::Go, &machine)))
        });
    }
    g.finish();
}

/// Fig. 9: predictor size extremes, plus the harmonic-mean reduction.
fn fig9(c: &mut Criterion) {
    let mut g = settings(c).benchmark_group("fig9_predictor_size");
    for bits in [10u32, 14, 16] {
        g.bench_function(format!("monopath/{bits}bits"), |b| {
            let machine = named_config(Config::Monopath, bits);
            b.iter(|| black_box(simulate(Workload::Compress, &machine)))
        });
        g.bench_function(format!("see_jrs/{bits}bits"), |b| {
            let machine = named_config(Config::SeeJrs, bits);
            b.iter(|| black_box(simulate(Workload::Compress, &machine)))
        });
    }
    g.bench_function("hmean_reduction", |b| {
        let ipcs = [2.1, 1.4, 2.7, 0.9, 2.6, 2.0, 4.2, 1.6];
        b.iter(|| black_box(harmonic_mean(&ipcs)))
    });
    g.finish();
}

/// Fig. 10: window size extremes.
fn fig10(c: &mut Criterion) {
    let mut g = settings(c).benchmark_group("fig10_window_size");
    for window in [64usize, 256, 1024] {
        for cfg in [Config::Monopath, Config::SeeJrs] {
            g.bench_function(format!("{}/{window}", cfg.label()), |b| {
                let mut machine = named_config(cfg, 14).with_window_size(window);
                machine.ctx_positions = pp_ctx::MAX_POSITIONS.min((window / 3).max(16));
                b.iter(|| black_box(simulate(Workload::Perl, &machine)))
            });
        }
    }
    g.finish();
}

/// Fig. 11: functional unit extremes.
fn fig11(c: &mut Criterion) {
    let mut g = settings(c).benchmark_group("fig11_fu_config");
    for n in [1usize, 4] {
        for cfg in [Config::Monopath, Config::SeeJrs] {
            g.bench_function(format!("{}/{n}fus", cfg.label()), |b| {
                let machine = named_config(cfg, 14).with_fus(FuConfig::uniform(n));
                b.iter(|| black_box(simulate(Workload::Jpeg, &machine)))
            });
        }
    }
    g.finish();
}

/// Fig. 12: pipeline depth extremes.
fn fig12(c: &mut Criterion) {
    let mut g = settings(c).benchmark_group("fig12_pipeline_depth");
    for depth in [6usize, 8, 10] {
        for cfg in [Config::Monopath, Config::SeeJrs] {
            g.bench_function(format!("{}/{depth}stages", cfg.label()), |b| {
                let machine = named_config(cfg, 14).with_pipeline_depth(depth);
                b.iter(|| black_box(simulate(Workload::Xlisp, &machine)))
            });
        }
    }
    g.finish();
}

/// §5.2: dual-path vs. SEE on a divergence-heavy workload.
fn sec52(c: &mut Criterion) {
    let mut g = settings(c).benchmark_group("sec52_dualpath");
    g.bench_function("see", |b| {
        let machine = named_config(Config::SeeJrs, 14);
        b.iter(|| black_box(simulate(Workload::Gcc, &machine)))
    });
    g.bench_function("dual_path", |b| {
        let machine = named_config(Config::SeeJrs, 14).with_mode(ExecMode::DualPath);
        b.iter(|| black_box(simulate(Workload::Gcc, &machine)))
    });
    g.finish();
}

/// §5.1: oracle pre-run (trace generation) cost.
fn sec51(c: &mut Criterion) {
    let mut g = settings(c).benchmark_group("sec51_analysis");
    g.bench_function("oracle_prerun", |b| {
        let machine = named_config(Config::Monopath, 14).with_predictor(PredictorKind::Oracle);
        b.iter(|| black_box(simulate(Workload::M88ksim, &machine)))
    });
    g.finish();
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = table1, fig8, fig9, fig10, fig11, fig12, sec51, sec52
}
criterion_main!(figures);
