//! End-to-end telemetry: run a real workload with a [`TelemetryObserver`]
//! attached and check the acceptance invariants — observation does not
//! perturb the simulation, the attribution tables tie out against
//! [`SimStats`], and the three artifacts have the right shape.

use std::sync::{Mutex, MutexGuard, OnceLock};

use pp_core::{HostProfile, SimConfig, SimStats, Simulator};
use pp_telemetry::{TelemetryConfig, TelemetryObserver};
use pp_workloads::Workload;

const SCALE: u64 = 3_000;

struct Runs {
    plain: SimStats,
    stats: SimStats,
    tel: Box<TelemetryObserver>,
    host: Option<HostProfile>,
}

/// The two simulations (with and without telemetry), run once and
/// shared across every test in this file.
fn runs() -> MutexGuard<'static, Runs> {
    static RUNS: OnceLock<Mutex<Runs>> = OnceLock::new();
    RUNS.get_or_init(|| {
        let program = Workload::Compress.build(SCALE);
        let plain = Simulator::new(&program, SimConfig::baseline()).run();

        let mut sim = Simulator::new(&program, SimConfig::baseline());
        sim.set_observer(Box::new(TelemetryObserver::with_config(TelemetryConfig {
            sample_every: 16,
            ..Default::default()
        })));
        sim.enable_self_profiling();
        let stats = sim.run();
        let host = sim.host_profile().cloned();
        let mut tel = TelemetryObserver::from_box(sim.take_observer().expect("observer attached"))
            .expect("a TelemetryObserver was attached");
        tel.seal();
        Mutex::new(Runs {
            plain,
            stats,
            tel,
            host,
        })
    })
    .lock()
    .expect("runs lock")
}

/// Attaching telemetry must not change the simulation: identical
/// SimStats with and without the observer.
#[test]
fn observer_does_not_perturb_the_run() {
    let r = runs();
    assert_eq!(r.plain, r.stats);
}

/// Acceptance: per-PC divergence counts sum to `SimStats::divergences`,
/// and the rest of the attribution ties out.
#[test]
fn attribution_ties_out_against_stats() {
    let r = runs();
    let (stats, tel, host) = (&r.stats, &r.tel, &r.host);
    assert!(stats.divergences > 0, "compress must diverge under SEE");
    assert_eq!(tel.branches().total_diverged(), stats.divergences);

    let reg = tel.registry();
    let counter = |name: &str| {
        reg.counters()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("counter {name} registered"))
            .1
    };
    assert_eq!(counter("fetched"), stats.fetched_instructions);
    assert_eq!(counter("committed"), stats.committed_instructions);
    assert_eq!(counter("killed"), stats.killed_instructions);
    assert_eq!(counter("divergences"), stats.divergences);

    // Kill-depth mass equals killed instructions: every killed
    // instruction is attributed to exactly one path generation.
    assert_eq!(tel.paths().kill_depth.sum(), stats.killed_instructions);
    assert!(tel.paths().generations() > 0);
    assert_eq!(tel.paths().open_count(), 0, "seal() closed everything");

    // Self-profiling rode along.
    let host = host.as_ref().expect("self-profiling enabled");
    assert_eq!(host.cycles, stats.cycles);
    // kips() is None only when the wall clock never ticked; a real run
    // of thousands of cycles always registers.
    assert!(host.kips().is_some_and(|k| k > 0.0));
}

/// The time series is downsampled on the configured interval and its
/// rows are strictly increasing in cycle.
#[test]
fn timeseries_is_downsampled_and_monotone() {
    let r = runs();
    let rows = r.tel.series().rows();
    assert_eq!(rows.len() as u64, r.stats.cycles.div_ceil(16));
    for w in rows.windows(2) {
        assert!(w[0].cycle < w[1].cycle);
        assert_eq!(w[1].cycle % 16, 0);
    }
    assert!(rows.iter().any(|r| r.live_paths > 1), "SEE forks paths");
    assert!(rows.iter().all(|r| r.window_occupancy <= 256));
}

/// Artifact shape: JSONL lines are objects, CSV has the documented
/// header, and the trace file is a Chrome trace-event JSON document.
#[test]
fn artifacts_have_the_documented_shape() {
    let mut r = runs();
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("telemetry-int");
    let stats = r.stats.clone();
    let host = r.host.clone();
    let arts = r
        .tel
        .write_artifacts(&dir, "compress", &stats, host.as_ref())
        .expect("artifacts written");

    let metrics = std::fs::read_to_string(&arts.metrics).unwrap();
    assert!(metrics.lines().count() > 20);
    for line in metrics.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "bad JSONL: {line}"
        );
        assert_eq!(line.matches('{').count(), line.matches('}').count());
        assert_eq!(line.matches('"').count() % 2, 0);
    }
    assert!(metrics.contains("\"kind\":\"derived\",\"name\":\"ipc\""));
    assert!(metrics.contains("\"kind\":\"branch_pc\""));
    assert!(metrics.contains("\"name\":\"kips\""));

    let csv = std::fs::read_to_string(&arts.timeseries).unwrap();
    assert!(
        csv.starts_with("cycle,live_paths,fetching_paths,window_occupancy,frontend_occupancy\n")
    );
    assert_eq!(csv.lines().count() as u64, 1 + stats.cycles.div_ceil(16));

    let trace = std::fs::read_to_string(&arts.trace).unwrap();
    assert!(trace.starts_with("{\"displayTimeUnit\""));
    assert!(trace.contains("\"traceEvents\":["));
    assert!(trace.contains("\"ph\":\"X\""));
    assert!(trace.contains("\"ph\":\"M\""));
    assert!(trace.trim_end().ends_with("]}"));
    assert_eq!(trace.matches('{').count(), trace.matches('}').count());
}
