//! # pp-telemetry — observability for the PolyPath simulator
//!
//! The simulator's [`pp_core::SimStats`] answers *how much* (IPC,
//! misprediction rate, PVN); this crate answers *which*, *where*, and
//! *when*:
//!
//! * a typed **metrics registry** ([`Registry`]) — counters, gauges, and
//!   log-bucketed [`Histogram`]s behind static names, no-cost when
//!   disabled;
//! * **attribution tables** — per-branch-PC divergence outcomes and
//!   confidence truth tables ([`BranchTable`]), per-path lifetime and
//!   kill-depth histograms ([`PathTable`]), and a cycle-sampled
//!   machine-state [`TimeSeries`];
//! * **exporters** — JSON Lines metrics, CSV time series, and a Chrome
//!   trace-event file (load it in `chrome://tracing` or Perfetto) built
//!   from the [`pp_core::PipeEvent`] stream;
//! * glue for **host-side self-profiling** ([`pp_core::HostProfile`]):
//!   the simulator's own phase timings and simulated-KIPS rate ride
//!   along in the metrics artifact. The same KIPS figure is what the
//!   kernel throughput report (`bench_kernel` → `BENCH_kernel.json`)
//!   aggregates across the `run_all` matrix, so cycle-loop
//!   optimizations show up here with no extra wiring (see DESIGN.md
//!   §3c, "Performance methodology").
//!
//! ## Usage
//!
//! Attach a [`TelemetryObserver`], run, detach, write:
//!
//! ```
//! use pp_core::{SimConfig, Simulator};
//! use pp_isa::{reg, Asm};
//! use pp_telemetry::TelemetryObserver;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Asm::new();
//! a.li(reg::T0, 5);
//! a.halt();
//! let program = a.assemble()?;
//!
//! let mut sim = Simulator::new(&program, SimConfig::baseline());
//! sim.set_observer(Box::new(TelemetryObserver::new()));
//! sim.enable_self_profiling();
//! let stats = sim.run();
//!
//! let mut tel = TelemetryObserver::from_box(sim.take_observer().unwrap()).unwrap();
//! tel.seal();
//! assert_eq!(
//!     tel.registry().counters().find(|(n, _)| *n == "committed").unwrap().1,
//!     stats.committed_instructions,
//! );
//! # Ok(())
//! # }
//! ```
//!
//! `write_artifacts` then drops `{name}.metrics.jsonl`,
//! `{name}.timeseries.csv`, and `{name}.trace.json` into a directory —
//! the experiment harness does this under `results/telemetry/` when run
//! with `--telemetry-out`.

mod attribution;
mod export;
mod observer;
mod registry;
mod trace;

pub use attribution::{BranchTable, PathTable, PcStats, TimeSeries};
pub use export::{
    json_escape, json_f64, write_chrome_trace, write_metrics_jsonl, write_registry_jsonl,
    write_timeseries_csv, EmptyExportError,
};
pub use observer::{TelemetryArtifacts, TelemetryConfig, TelemetryObserver};
pub use registry::{CounterId, GaugeId, HistId, Histogram, Registry};
pub use trace::{ChromeTrace, TraceEvent, DEFAULT_MAX_TRACE_EVENTS};
