//! The telemetry sink: a [`PipelineObserver`] that feeds the metrics
//! registry, the attribution tables, the time series, and the Chrome
//! trace from one pass over the event stream, then writes the three
//! artifacts.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};

use pp_core::{CycleSample, HostProfile, KillStage, PipeEvent, PipelineObserver, SimStats};
use pp_isa::Op;

use crate::attribution::{BranchTable, PathTable, TimeSeries};
use crate::export;
use crate::registry::{CounterId, HistId, Registry};
use crate::trace::{ChromeTrace, DEFAULT_MAX_TRACE_EVENTS};

/// Knobs for [`TelemetryObserver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Keep one machine-state sample every this many cycles.
    pub sample_every: u64,
    /// Cap on Chrome-trace events (excess is dropped and counted).
    pub max_trace_events: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            sample_every: 64,
            max_trace_events: DEFAULT_MAX_TRACE_EVENTS,
        }
    }
}

/// Where one instruction currently is (pruned at commit/kill, so the
/// map is bounded by the number of in-flight instructions).
#[derive(Debug, Clone, Copy)]
struct Inflight {
    pc: usize,
    tid: u32,
    op: Op,
    fetched: u64,
    dispatched: Option<u64>,
    issued: Option<u64>,
    completed: Option<u64>,
}

/// Artifact paths written by [`TelemetryObserver::write_artifacts`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryArtifacts {
    /// JSON Lines metrics file.
    pub metrics: PathBuf,
    /// CSV machine-state time series.
    pub timeseries: PathBuf,
    /// Chrome trace-event JSON (load in `chrome://tracing` or Perfetto).
    pub trace: PathBuf,
}

/// One-pass telemetry sink over the pipeline event stream.
pub struct TelemetryObserver {
    registry: Registry,
    branches: BranchTable,
    paths: PathTable,
    series: TimeSeries,
    trace: ChromeTrace,
    inflight: HashMap<u64, Inflight>,
    last_cycle: u64,

    c_events: CounterId,
    c_fetched: CounterId,
    c_killed: CounterId,
    c_committed: CounterId,
    c_diverged: CounterId,
    c_resolved: CounterId,
    c_mispredicted: CounterId,
    c_redirects: CounterId,
    c_killed_frontend: CounterId,
    h_commit_latency: HistId,
    h_exec_latency: HistId,
}

impl TelemetryObserver {
    /// Telemetry with default knobs.
    pub fn new() -> Self {
        Self::with_config(TelemetryConfig::default())
    }

    /// Telemetry with explicit knobs.
    pub fn with_config(cfg: TelemetryConfig) -> Self {
        let mut registry = Registry::new();
        let c_events = registry.counter("pipe_events");
        let c_fetched = registry.counter("fetched");
        let c_killed = registry.counter("killed");
        let c_committed = registry.counter("committed");
        let c_diverged = registry.counter("divergences");
        let c_resolved = registry.counter("branch_resolutions");
        let c_mispredicted = registry.counter("mispredict_resolutions");
        let c_redirects = registry.counter("recovery_redirects");
        let c_killed_frontend = registry.counter("killed_in_frontend");
        let h_commit_latency = registry.histogram("fetch_to_commit_cycles");
        let h_exec_latency = registry.histogram("issue_to_complete_cycles");
        TelemetryObserver {
            registry,
            branches: BranchTable::new(),
            paths: PathTable::new(),
            series: TimeSeries::new(cfg.sample_every),
            trace: ChromeTrace::with_capacity(cfg.max_trace_events),
            inflight: HashMap::new(),
            last_cycle: 0,
            c_events,
            c_fetched,
            c_killed,
            c_committed,
            c_diverged,
            c_resolved,
            c_mispredicted,
            c_redirects,
            c_killed_frontend,
            h_commit_latency,
            h_exec_latency,
        }
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Per-branch-PC attribution.
    pub fn branches(&self) -> &BranchTable {
        &self.branches
    }

    /// Per-path attribution (close it via [`Self::seal`] first for
    /// complete histograms).
    pub fn paths(&self) -> &PathTable {
        &self.paths
    }

    /// The downsampled machine-state series.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// The Chrome trace accumulated so far.
    pub fn trace(&self) -> &ChromeTrace {
        &self.trace
    }

    /// Close still-open path generations (call once, after the run).
    pub fn seal(&mut self) {
        self.paths.close_all();
    }

    /// Emit the stage spans for a finished instruction.
    fn finish_inst(&mut self, fid: u64, end: u64, outcome: &'static str) {
        let Some(i) = self.inflight.remove(&fid) else {
            return;
        };
        let name = format!("{} @{}", i.op, i.pc);
        let args = vec![
            ("fid", fid.to_string()),
            ("outcome", format!("\"{outcome}\"")),
        ];
        let d = i.dispatched.unwrap_or(end);
        self.trace
            .span(name.clone(), "fetch", i.tid, i.fetched, d.min(end), vec![]);
        if let Some(d) = i.dispatched {
            let iss = i.issued.unwrap_or(end);
            self.trace
                .span(name.clone(), "window", i.tid, d, iss.min(end), vec![]);
        }
        if let Some(iss) = i.issued {
            let c = i.completed.unwrap_or(end);
            self.trace
                .span(name.clone(), "exec", i.tid, iss, c.min(end), vec![]);
            if let Some(c) = i.completed {
                self.registry.observe(self.h_exec_latency, c - iss);
            }
        }
        if let Some(c) = i.completed {
            self.trace.span(name, "retire-wait", i.tid, c, end, args);
        } else {
            self.trace
                .instant(format!("{outcome} {} @{}", i.op, i.pc), outcome, i.tid, end);
        }
        if outcome == "commit" {
            self.registry
                .observe(self.h_commit_latency, end - i.fetched);
        }
    }

    /// Seal and write the three artifacts into `dir` as
    /// `{name}.metrics.jsonl`, `{name}.timeseries.csv`, `{name}.trace.json`.
    pub fn write_artifacts(
        &mut self,
        dir: &Path,
        name: &str,
        stats: &SimStats,
        host: Option<&HostProfile>,
    ) -> io::Result<TelemetryArtifacts> {
        self.seal();
        std::fs::create_dir_all(dir)?;
        let out = TelemetryArtifacts {
            metrics: dir.join(format!("{name}.metrics.jsonl")),
            timeseries: dir.join(format!("{name}.timeseries.csv")),
            trace: dir.join(format!("{name}.trace.json")),
        };

        let mut w = io::BufWriter::new(std::fs::File::create(&out.metrics)?);
        export::write_metrics_jsonl(
            &mut w,
            stats,
            host,
            &self.registry,
            &self.branches,
            &self.paths,
        )?;

        let mut w = io::BufWriter::new(std::fs::File::create(&out.timeseries)?);
        export::write_timeseries_csv(&mut w, &self.series)?;

        let mut w = io::BufWriter::new(std::fs::File::create(&out.trace)?);
        export::write_chrome_trace(&mut w, &self.trace)?;
        Ok(out)
    }

    /// Recover a `TelemetryObserver` from
    /// [`pp_core::Simulator::take_observer`]'s type-erased box.
    pub fn from_box(b: Box<dyn PipelineObserver>) -> Option<Box<TelemetryObserver>> {
        b.into_any().downcast().ok()
    }
}

impl Default for TelemetryObserver {
    fn default() -> Self {
        Self::new()
    }
}

impl PipelineObserver for TelemetryObserver {
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }

    fn event(&mut self, ev: &PipeEvent) {
        self.registry.inc(self.c_events, 1);
        self.last_cycle = self.last_cycle.max(ev.cycle());
        match *ev {
            PipeEvent::Fetched {
                cycle,
                fid,
                pc,
                path,
                op,
            } => {
                self.registry.inc(self.c_fetched, 1);
                self.paths.record_fetch(path, cycle);
                self.inflight.insert(
                    fid.0,
                    Inflight {
                        pc,
                        tid: path.index() as u32,
                        op,
                        fetched: cycle,
                        dispatched: None,
                        issued: None,
                        completed: None,
                    },
                );
            }
            PipeEvent::Diverged {
                cycle,
                branch,
                taken_path,
                ..
            } => {
                self.registry.inc(self.c_diverged, 1);
                // The taken successor lands in a fresh (possibly reused)
                // slot: close the slot's previous generation, open a new
                // one. The not-taken successor continues its parent slot.
                self.paths.close(taken_path);
                self.paths.touch(taken_path, cycle);
                if let Some(b) = self.inflight.get(&branch.0) {
                    let (tid, pc, op) = (b.tid, b.pc, b.op);
                    self.branches.record_divergence(pc);
                    self.trace
                        .instant(format!("diverge {op} @{pc}"), "diverge", tid, cycle);
                }
            }
            PipeEvent::Dispatched { cycle, fid, .. } => {
                if let Some(i) = self.inflight.get_mut(&fid.0) {
                    i.dispatched = Some(cycle);
                }
            }
            PipeEvent::Issued { cycle, fid } => {
                if let Some(i) = self.inflight.get_mut(&fid.0) {
                    i.issued = Some(cycle);
                }
            }
            PipeEvent::Completed { cycle, fid } => {
                if let Some(i) = self.inflight.get_mut(&fid.0) {
                    i.completed = Some(cycle);
                }
            }
            PipeEvent::Resolved {
                cycle,
                fid,
                mispredicted,
                diverged,
                conf_low,
            } => {
                self.registry.inc(self.c_resolved, 1);
                if let Some(i) = self.inflight.get(&fid.0) {
                    let (pc, tid, op) = (i.pc, i.tid, i.op);
                    self.branches
                        .record_resolution(pc, mispredicted, diverged, conf_low);
                    if mispredicted {
                        self.registry.inc(self.c_mispredicted, 1);
                        self.trace.instant(
                            format!("mispredict {op} @{pc}"),
                            "mispredict",
                            tid,
                            cycle,
                        );
                    }
                }
            }
            PipeEvent::Redirected { cycle, branch, pc } => {
                self.registry.inc(self.c_redirects, 1);
                let tid = self.inflight.get(&branch.0).map_or(0, |i| i.tid);
                self.trace
                    .instant(format!("redirect → @{pc}"), "redirect", tid, cycle);
            }
            PipeEvent::Killed { cycle, fid, stage } => {
                self.registry.inc(self.c_killed, 1);
                if stage == KillStage::FrontEnd {
                    self.registry.inc(self.c_killed_frontend, 1);
                }
                if let Some(i) = self.inflight.get(&fid.0) {
                    // Attribute the killed work to the path it ran on.
                    self.paths.record_kill_slot(i.tid, cycle);
                }
                self.finish_inst(fid.0, cycle, "kill");
            }
            PipeEvent::Committed { cycle, fid } => {
                self.registry.inc(self.c_committed, 1);
                self.finish_inst(fid.0, cycle, "commit");
            }
        }
    }

    fn sample(&mut self, s: &CycleSample) {
        self.series.offer(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::FetchId;
    use pp_ctx::PathTable as CtxPathTable;

    fn pid() -> pp_ctx::PathId {
        let mut t: CtxPathTable<()> = CtxPathTable::new(1);
        t.allocate(()).unwrap()
    }

    fn fetched(cycle: u64, fid: u64, pc: usize) -> PipeEvent {
        PipeEvent::Fetched {
            cycle,
            fid: FetchId(fid),
            pc,
            path: pid(),
            op: Op::Nop,
        }
    }

    #[test]
    fn commit_lifecycle_produces_stage_spans() {
        let mut t = TelemetryObserver::new();
        t.event(&fetched(0, 0, 8));
        t.event(&PipeEvent::Dispatched {
            cycle: 3,
            fid: FetchId(0),
            seq: 0,
        });
        t.event(&PipeEvent::Issued {
            cycle: 4,
            fid: FetchId(0),
        });
        t.event(&PipeEvent::Completed {
            cycle: 6,
            fid: FetchId(0),
        });
        t.event(&PipeEvent::Committed {
            cycle: 9,
            fid: FetchId(0),
        });
        let cats: Vec<_> = t.trace().events().iter().map(|e| e.cat).collect();
        assert_eq!(cats, vec!["fetch", "window", "exec", "retire-wait"]);
        assert_eq!(t.registry().hist(t.h_commit_latency).max(), 9);
        assert_eq!(t.registry().hist(t.h_exec_latency).max(), 2);
        assert_eq!(t.registry().counter_value(t.c_committed), 1);
        // Pruned: the map does not grow with the run.
        assert!(t.inflight.is_empty());
    }

    #[test]
    fn kill_before_dispatch_emits_instant() {
        let mut t = TelemetryObserver::new();
        t.event(&fetched(0, 7, 16));
        t.event(&PipeEvent::Killed {
            cycle: 2,
            fid: FetchId(7),
            stage: KillStage::FrontEnd,
        });
        assert_eq!(t.registry().counter_value(t.c_killed_frontend), 1);
        assert!(t
            .trace()
            .events()
            .iter()
            .any(|e| e.ph == 'i' && e.cat == "kill"));
        assert!(t.inflight.is_empty());
    }

    #[test]
    fn resolution_feeds_branch_table() {
        let mut t = TelemetryObserver::new();
        t.event(&fetched(0, 1, 40));
        t.event(&PipeEvent::Resolved {
            cycle: 5,
            fid: FetchId(1),
            mispredicted: true,
            diverged: true,
            conf_low: true,
        });
        let s = t.branches().get(40).unwrap();
        assert_eq!(s.diverged, 1);
        assert_eq!(s.low_incorrect, 1);
        assert_eq!(t.registry().counter_value(t.c_mispredicted), 1);
    }

    #[test]
    fn downcast_roundtrip() {
        let b: Box<dyn PipelineObserver> = Box::new(TelemetryObserver::new());
        assert!(TelemetryObserver::from_box(b).is_some());
        let other: Box<dyn PipelineObserver> = Box::new(pp_core::TraceLog::new());
        assert!(TelemetryObserver::from_box(other).is_none());
    }
}
