//! Chrome trace-event building: turn the [`pp_core::PipeEvent`] stream
//! into a timeline loadable by `chrome://tracing` / Perfetto.
//!
//! Mapping: one trace *thread* (`tid`) per CTX-table path slot, one
//! complete-event ("X") span per pipeline stage an instruction occupied,
//! and instant events ("i") for the micro-architectural punctuation —
//! divergences, kills, mispredict resolutions, recovery redirects. One
//! simulated cycle is one microsecond of trace time, so Perfetto's
//! duration labels read directly as cycle counts.

/// One trace event, pre-flattened to the fields the JSON needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Phase: `'X'` complete (has `dur`), `'i'` instant, `'M'` metadata.
    pub ph: char,
    /// Display name.
    pub name: String,
    /// Category string (stage name or event kind).
    pub cat: &'static str,
    /// Start time in µs (= cycle).
    pub ts: u64,
    /// Duration in µs (complete events only).
    pub dur: u64,
    /// Trace thread: the path slot index.
    pub tid: u32,
    /// Extra `args` entries as key → already-rendered JSON value.
    pub args: Vec<(&'static str, String)>,
}

/// Accumulates [`TraceEvent`]s with a hard cap so a long run cannot
/// balloon the artifact; drops (and counts) events past the cap.
#[derive(Debug)]
pub struct ChromeTrace {
    events: Vec<TraceEvent>,
    max_events: usize,
    dropped: u64,
}

/// Default event cap: enough for a few hundred thousand instructions'
/// stages, ~100 MB of JSON at the upper end.
pub const DEFAULT_MAX_TRACE_EVENTS: usize = 200_000;

impl Default for ChromeTrace {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_MAX_TRACE_EVENTS)
    }
}

impl ChromeTrace {
    /// Trace with the default event cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trace that keeps at most `max_events` non-metadata events.
    pub fn with_capacity(max_events: usize) -> Self {
        ChromeTrace {
            events: Vec::new(),
            max_events,
            dropped: 0,
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() < self.max_events {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// A complete ("X") span covering `[start, end]` cycles on `tid`.
    pub fn span(
        &mut self,
        name: String,
        cat: &'static str,
        tid: u32,
        start: u64,
        end: u64,
        args: Vec<(&'static str, String)>,
    ) {
        self.push(TraceEvent {
            ph: 'X',
            name,
            cat,
            ts: start,
            dur: end.saturating_sub(start).max(1),
            tid,
            args,
        });
    }

    /// An instant ("i") event at `cycle` on `tid`.
    pub fn instant(&mut self, name: String, cat: &'static str, tid: u32, cycle: u64) {
        self.push(TraceEvent {
            ph: 'i',
            name,
            cat,
            ts: cycle,
            dur: 0,
            tid,
            args: Vec::new(),
        });
    }

    /// Events recorded so far (metadata not included; the exporter
    /// synthesizes thread names from the tids it sees).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events discarded because the cap was hit.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Distinct tids referenced, sorted (for thread-name metadata).
    pub fn tids(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.events.iter().map(|e| e.tid).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_have_min_duration_one() {
        let mut t = ChromeTrace::new();
        t.span("nop @0".into(), "exec", 0, 5, 5, vec![]);
        assert_eq!(t.events()[0].dur, 1);
        t.span("nop @4".into(), "exec", 0, 5, 9, vec![]);
        assert_eq!(t.events()[1].dur, 4);
    }

    #[test]
    fn cap_drops_and_counts() {
        let mut t = ChromeTrace::with_capacity(2);
        for i in 0..5 {
            t.instant(format!("e{i}"), "kill", 0, i);
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn tids_are_sorted_and_deduped() {
        let mut t = ChromeTrace::new();
        t.instant("a".into(), "kill", 3, 0);
        t.instant("b".into(), "kill", 1, 0);
        t.instant("c".into(), "kill", 3, 0);
        assert_eq!(t.tids(), vec![1, 3]);
    }
}
