//! Artifact writers: JSON Lines metrics, CSV time series, Chrome trace
//! JSON. All JSON is emitted by hand (the workspace carries no
//! serialization dependency); everything writes through `io::Write` so
//! tests can target byte buffers and the harness can target files.
//!
//! Every writer returns the number of *records* it wrote (metric lines,
//! CSV data rows, trace events — headers and metadata don't count) and
//! fails a zero-record export with [`EmptyExportError`]: an artifact
//! that parses but carries no data means the instrument was never
//! populated, and silently shipping it hides the wiring bug.

use std::io::{self, Write};

/// A writer produced a structurally valid artifact containing zero
/// records. Surfaced as the inner error of an
/// [`io::ErrorKind::InvalidData`] error so it threads through the
/// existing `io::Result` plumbing; callers that care which artifact came
/// up empty can `get_ref().downcast_ref::<EmptyExportError>()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmptyExportError {
    /// Which artifact came up empty (`"metrics.jsonl"`, …).
    pub artifact: &'static str,
}

impl std::fmt::Display for EmptyExportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} export wrote zero records (instrument never populated?)",
            self.artifact
        )
    }
}

impl std::error::Error for EmptyExportError {}

/// `Ok(records)` unless the export was empty.
fn nonempty(artifact: &'static str, records: usize) -> io::Result<usize> {
    if records == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            EmptyExportError { artifact },
        ));
    }
    Ok(records)
}

use pp_core::{HostProfile, SimStats};

use crate::attribution::{BranchTable, PathTable, TimeSeries};
use crate::registry::{Histogram, Registry};
use crate::trace::ChromeTrace;

/// Escape `s` for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON number (non-finite values become `null`,
/// which JSON has no other spelling for).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn hist_json(h: &Histogram) -> String {
    let buckets: Vec<String> = h
        .nonzero_buckets()
        .map(|(lo, hi, n)| format!("[{lo},{hi},{n}]"))
        .collect();
    format!(
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50_ub\":{},\"p99_ub\":{},\"buckets\":[{}]}}",
        h.count(),
        h.sum(),
        h.min(),
        h.max(),
        json_f64(h.mean()),
        h.quantile_ub(0.5),
        h.quantile_ub(0.99),
        buckets.join(","),
    )
}

/// Write just a [`Registry`]'s instruments as JSON Lines: one
/// `counter` / `gauge` / `histogram` object per line. This is the
/// export path for registries that live outside a simulation — e.g. the
/// sweep engine's progress metrics — where no [`SimStats`] exists.
/// Returns the number of lines written; an empty registry is an error
/// (there was nothing to export, so the artifact would be a lie).
pub fn write_registry_jsonl<W: Write>(w: &mut W, registry: &Registry) -> io::Result<usize> {
    let n = registry_lines(w, registry)?;
    nonempty("registry.jsonl", n)
}

/// The registry body shared by [`write_registry_jsonl`] and
/// [`write_metrics_jsonl`]. No empty guard here: embedded in the
/// metrics artifact an empty registry is fine (the derived lines carry
/// the export).
fn registry_lines<W: Write>(w: &mut W, registry: &Registry) -> io::Result<usize> {
    let mut n = 0;
    for (name, v) in registry.counters() {
        writeln!(
            w,
            "{{\"kind\":\"counter\",\"name\":\"{}\",\"value\":{v}}}",
            json_escape(name)
        )?;
        n += 1;
    }
    for (name, v) in registry.gauges() {
        writeln!(
            w,
            "{{\"kind\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
            json_escape(name),
            json_f64(v)
        )?;
        n += 1;
    }
    for (name, h) in registry.hists() {
        writeln!(
            w,
            "{{\"kind\":\"histogram\",\"name\":\"{}\",\"value\":{}}}",
            json_escape(name),
            hist_json(h)
        )?;
        n += 1;
    }
    Ok(n)
}

/// Write the metrics artifact: one self-describing JSON object per line.
///
/// Line kinds: `counter`, `gauge`, `histogram` (registry instruments),
/// `derived` (the [`SimStats`] metric methods), `branch_pc` (one line per
/// static branch site), `path_hist` (lifetime / kill-depth), and `host`
/// (self-profiling) when available. Returns the number of lines written.
pub fn write_metrics_jsonl<W: Write>(
    w: &mut W,
    stats: &SimStats,
    host: Option<&HostProfile>,
    registry: &Registry,
    branches: &BranchTable,
    paths: &PathTable,
) -> io::Result<usize> {
    let mut n = 0;
    // Derived metrics: the paper's evaluation numbers, computed by the
    // shared SimStats helpers so every consumer agrees on the formulas.
    let derived: [(&str, f64); 9] = [
        ("ipc", stats.ipc()),
        ("mispredict_rate", stats.mispredict_rate()),
        ("pvn", stats.pvn()),
        ("sensitivity", stats.sensitivity()),
        ("mean_active_paths", stats.mean_active_paths()),
        ("mean_window_occupancy", stats.mean_window_occupancy()),
        ("fetched_per_committed", stats.fetched_per_committed()),
        ("dcache_miss_rate", stats.dcache_miss_rate()),
        ("useless_instructions", stats.useless_instructions() as f64),
    ];
    for (name, v) in derived {
        writeln!(
            w,
            "{{\"kind\":\"derived\",\"name\":\"{name}\",\"value\":{}}}",
            json_f64(v)
        )?;
        n += 1;
    }
    let raw: [(&str, u64); 8] = [
        ("cycles", stats.cycles),
        ("committed_instructions", stats.committed_instructions),
        ("fetched_instructions", stats.fetched_instructions),
        ("killed_instructions", stats.killed_instructions),
        ("committed_branches", stats.committed_branches),
        ("mispredicted_branches", stats.mispredicted_branches),
        ("divergences", stats.divergences),
        ("recoveries", stats.recoveries),
    ];
    for (name, v) in raw {
        writeln!(
            w,
            "{{\"kind\":\"counter\",\"name\":\"{name}\",\"value\":{v}}}"
        )?;
        n += 1;
    }

    n += registry_lines(w, registry)?;

    writeln!(
        w,
        "{{\"kind\":\"path_hist\",\"name\":\"path_lifetime_cycles\",\"value\":{}}}",
        hist_json(&paths.lifetime)
    )?;
    writeln!(
        w,
        "{{\"kind\":\"path_hist\",\"name\":\"path_kill_depth\",\"value\":{}}}",
        hist_json(&paths.kill_depth)
    )?;
    n += 2;

    for (pc, s) in branches.sorted() {
        writeln!(
            w,
            "{{\"kind\":\"branch_pc\",\"pc\":{pc},\"resolved\":{},\"mispredicted\":{},\
             \"diverged\":{},\"forked\":{},\"low_incorrect\":{},\"low_correct\":{},\
             \"high_incorrect\":{},\"high_correct\":{},\"mispredict_rate\":{},\"pvn\":{}}}",
            s.resolved,
            s.mispredicted,
            s.diverged,
            s.forked,
            s.low_incorrect,
            s.low_correct,
            s.high_incorrect,
            s.high_correct,
            json_f64(s.mispredict_rate()),
            json_f64(s.pvn()),
        )?;
        n += 1;
    }

    if let Some(p) = host {
        // A sub-resolution wall time has no KIPS figure; omit the row
        // rather than emit a poisoned 0.0 into downstream aggregation.
        if let Some(kips) = p.kips() {
            writeln!(
                w,
                "{{\"kind\":\"host\",\"name\":\"kips\",\"value\":{}}}",
                json_f64(kips)
            )?;
            n += 1;
        }
        writeln!(
            w,
            "{{\"kind\":\"host\",\"name\":\"wall_seconds\",\"value\":{}}}",
            json_f64(p.wall.as_secs_f64())
        )?;
        n += 1;
        for (name, d) in p.phases() {
            writeln!(
                w,
                "{{\"kind\":\"host\",\"name\":\"phase_{name}_seconds\",\"value\":{}}}",
                json_f64(d.as_secs_f64())
            )?;
            n += 1;
        }
    }
    nonempty("metrics.jsonl", n)
}

/// Write the cycle-sampled machine-state time series as CSV. Returns
/// the number of data rows (the header doesn't count — a header-only
/// CSV is an empty export and errors).
pub fn write_timeseries_csv<W: Write>(w: &mut W, ts: &TimeSeries) -> io::Result<usize> {
    writeln!(
        w,
        "cycle,live_paths,fetching_paths,window_occupancy,frontend_occupancy"
    )?;
    let mut n = 0;
    for r in ts.rows() {
        writeln!(
            w,
            "{},{},{},{},{}",
            r.cycle, r.live_paths, r.fetching_paths, r.window_occupancy, r.frontend_occupancy
        )?;
        n += 1;
    }
    nonempty("timeseries.csv", n)
}

/// Write the Chrome trace-event artifact
/// (`chrome://tracing` / Perfetto "load trace file" format). Returns
/// the number of trace events written (process/thread metadata doesn't
/// count, so an event-free trace is an empty export and errors).
pub fn write_chrome_trace<W: Write>(w: &mut W, trace: &ChromeTrace) -> io::Result<usize> {
    nonempty("trace.json", trace.events().len())?;
    write!(w, "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")?;
    let mut first = true;
    let sep = |w: &mut W, first: &mut bool| -> io::Result<()> {
        if !*first {
            write!(w, ",")?;
        }
        *first = false;
        Ok(())
    };

    // Metadata: name the process and one thread per path slot.
    sep(w, &mut first)?;
    write!(
        w,
        "{{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{{\"name\":\"polypath-sim\"}}}}"
    )?;
    for tid in trace.tids() {
        sep(w, &mut first)?;
        write!(
            w,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"path {tid}\"}}}}"
        )?;
    }

    for e in trace.events() {
        sep(w, &mut first)?;
        write!(
            w,
            "{{\"ph\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{},\"cat\":\"{}\",\"name\":\"{}\"",
            e.ph,
            e.tid,
            e.ts,
            json_escape(e.cat),
            json_escape(&e.name),
        )?;
        if e.ph == 'X' {
            write!(w, ",\"dur\":{}", e.dur)?;
        }
        if e.ph == 'i' {
            // Thread-scoped instant.
            write!(w, ",\"s\":\"t\"")?;
        }
        if !e.args.is_empty() {
            write!(w, ",\"args\":{{")?;
            for (i, (k, v)) in e.args.iter().enumerate() {
                if i > 0 {
                    write!(w, ",")?;
                }
                write!(w, "\"{}\":{v}", json_escape(k))?;
            }
            write!(w, "}}")?;
        }
        write!(w, "}}")?;
    }
    writeln!(w, "]}}")?;
    Ok(trace.events().len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(2.5), "2.5");
    }

    #[test]
    fn metrics_jsonl_lines_are_json_objects() {
        let mut reg = Registry::new();
        let c = reg.counter("telemetry_events");
        reg.inc(c, 7);
        let h = reg.histogram("h");
        reg.observe(h, 3);
        let mut branches = BranchTable::new();
        branches.record_resolution(64, true, true, true);
        let paths = PathTable::new();
        let stats = SimStats {
            cycles: 10,
            committed_instructions: 20,
            ..Default::default()
        };

        let mut buf = Vec::new();
        let n = write_metrics_jsonl(&mut buf, &stats, None, &reg, &branches, &paths).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(!text.is_empty());
        assert_eq!(n, text.lines().count(), "returned count = lines written");
        for line in text.lines() {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "bad line: {line}"
            );
            // Balanced braces and quotes — cheap structural sanity.
            let braces = line.matches('{').count() == line.matches('}').count();
            assert!(braces, "unbalanced: {line}");
            assert_eq!(
                line.matches('"').count() % 2,
                0,
                "unbalanced quotes: {line}"
            );
        }
        assert!(text.contains("\"name\":\"ipc\",\"value\":2"));
        assert!(text.contains("\"name\":\"telemetry_events\",\"value\":7"));
        assert!(text.contains("\"kind\":\"branch_pc\",\"pc\":64"));
        assert!(text.contains("path_kill_depth"));
    }

    #[test]
    fn timeseries_csv_shape() {
        use pp_core::CycleSample;
        let mut ts = TimeSeries::new(1);
        ts.offer(&CycleSample {
            cycle: 0,
            live_paths: 2,
            fetching_paths: 1,
            window_occupancy: 17,
            frontend_occupancy: 4,
        });
        let mut buf = Vec::new();
        assert_eq!(write_timeseries_csv(&mut buf, &ts).unwrap(), 1);
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            "cycle,live_paths,fetching_paths,window_occupancy,frontend_occupancy"
        );
        assert_eq!(lines.next().unwrap(), "0,2,1,17,4");
    }

    #[test]
    fn zero_record_exports_are_named_errors() {
        let cases: [(&str, io::Result<usize>); 3] = [
            (
                "registry.jsonl",
                write_registry_jsonl(&mut Vec::new(), &Registry::new()),
            ),
            (
                "timeseries.csv",
                write_timeseries_csv(&mut Vec::new(), &TimeSeries::new(1)),
            ),
            (
                "trace.json",
                write_chrome_trace(&mut Vec::new(), &ChromeTrace::new()),
            ),
        ];
        for (artifact, res) in cases {
            let err = res.expect_err(artifact);
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{artifact}");
            let inner = err
                .get_ref()
                .and_then(|e| e.downcast_ref::<EmptyExportError>())
                .unwrap_or_else(|| panic!("{artifact}: not an EmptyExportError: {err}"));
            assert_eq!(inner.artifact, artifact);
            assert!(err.to_string().contains("zero records"), "{err}");
        }
        // But an empty registry embedded in the metrics artifact is fine:
        // the derived lines carry the export.
        let mut buf = Vec::new();
        let n = write_metrics_jsonl(
            &mut buf,
            &SimStats::default(),
            None,
            &Registry::new(),
            &BranchTable::new(),
            &PathTable::new(),
        )
        .expect("metrics always has derived lines");
        assert!(n >= 17, "derived + raw + path_hist lines, got {n}");
    }

    #[test]
    fn chrome_trace_is_wellformed() {
        let mut t = ChromeTrace::new();
        t.span("add @12".into(), "exec", 0, 3, 6, vec![("fid", "9".into())]);
        t.instant("kill".into(), "kill", 2, 8);
        let mut buf = Vec::new();
        assert_eq!(write_chrome_trace(&mut buf, &t).unwrap(), 2);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("{\"displayTimeUnit\""));
        assert!(text.trim_end().ends_with("]}"));
        assert!(text.contains("\"traceEvents\":["));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"dur\":3"));
        assert!(text.contains("\"ph\":\"i\""));
        assert!(text.contains("\"s\":\"t\""));
        assert!(text.contains("\"thread_name\""));
        assert!(text.contains("\"args\":{\"fid\":9}"));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
    }
}
