//! Artifact writers: JSON Lines metrics, CSV time series, Chrome trace
//! JSON. All JSON is emitted by hand (the workspace carries no
//! serialization dependency); everything writes through `io::Write` so
//! tests can target byte buffers and the harness can target files.

use std::io::{self, Write};

use pp_core::{HostProfile, SimStats};

use crate::attribution::{BranchTable, PathTable, TimeSeries};
use crate::registry::{Histogram, Registry};
use crate::trace::ChromeTrace;

/// Escape `s` for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON number (non-finite values become `null`,
/// which JSON has no other spelling for).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn hist_json(h: &Histogram) -> String {
    let buckets: Vec<String> = h
        .nonzero_buckets()
        .map(|(lo, hi, n)| format!("[{lo},{hi},{n}]"))
        .collect();
    format!(
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50_ub\":{},\"p99_ub\":{},\"buckets\":[{}]}}",
        h.count(),
        h.sum(),
        h.min(),
        h.max(),
        json_f64(h.mean()),
        h.quantile_ub(0.5),
        h.quantile_ub(0.99),
        buckets.join(","),
    )
}

/// Write just a [`Registry`]'s instruments as JSON Lines: one
/// `counter` / `gauge` / `histogram` object per line. This is the
/// export path for registries that live outside a simulation — e.g. the
/// sweep engine's progress metrics — where no [`SimStats`] exists.
pub fn write_registry_jsonl<W: Write>(w: &mut W, registry: &Registry) -> io::Result<()> {
    for (name, v) in registry.counters() {
        writeln!(
            w,
            "{{\"kind\":\"counter\",\"name\":\"{}\",\"value\":{v}}}",
            json_escape(name)
        )?;
    }
    for (name, v) in registry.gauges() {
        writeln!(
            w,
            "{{\"kind\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
            json_escape(name),
            json_f64(v)
        )?;
    }
    for (name, h) in registry.hists() {
        writeln!(
            w,
            "{{\"kind\":\"histogram\",\"name\":\"{}\",\"value\":{}}}",
            json_escape(name),
            hist_json(h)
        )?;
    }
    Ok(())
}

/// Write the metrics artifact: one self-describing JSON object per line.
///
/// Line kinds: `counter`, `gauge`, `histogram` (registry instruments),
/// `derived` (the [`SimStats`] metric methods), `branch_pc` (one line per
/// static branch site), `path_hist` (lifetime / kill-depth), and `host`
/// (self-profiling) when available.
pub fn write_metrics_jsonl<W: Write>(
    w: &mut W,
    stats: &SimStats,
    host: Option<&HostProfile>,
    registry: &Registry,
    branches: &BranchTable,
    paths: &PathTable,
) -> io::Result<()> {
    // Derived metrics: the paper's evaluation numbers, computed by the
    // shared SimStats helpers so every consumer agrees on the formulas.
    let derived: [(&str, f64); 9] = [
        ("ipc", stats.ipc()),
        ("mispredict_rate", stats.mispredict_rate()),
        ("pvn", stats.pvn()),
        ("sensitivity", stats.sensitivity()),
        ("mean_active_paths", stats.mean_active_paths()),
        ("mean_window_occupancy", stats.mean_window_occupancy()),
        ("fetched_per_committed", stats.fetched_per_committed()),
        ("dcache_miss_rate", stats.dcache_miss_rate()),
        ("useless_instructions", stats.useless_instructions() as f64),
    ];
    for (name, v) in derived {
        writeln!(
            w,
            "{{\"kind\":\"derived\",\"name\":\"{name}\",\"value\":{}}}",
            json_f64(v)
        )?;
    }
    let raw: [(&str, u64); 8] = [
        ("cycles", stats.cycles),
        ("committed_instructions", stats.committed_instructions),
        ("fetched_instructions", stats.fetched_instructions),
        ("killed_instructions", stats.killed_instructions),
        ("committed_branches", stats.committed_branches),
        ("mispredicted_branches", stats.mispredicted_branches),
        ("divergences", stats.divergences),
        ("recoveries", stats.recoveries),
    ];
    for (name, v) in raw {
        writeln!(
            w,
            "{{\"kind\":\"counter\",\"name\":\"{name}\",\"value\":{v}}}"
        )?;
    }

    write_registry_jsonl(w, registry)?;

    writeln!(
        w,
        "{{\"kind\":\"path_hist\",\"name\":\"path_lifetime_cycles\",\"value\":{}}}",
        hist_json(&paths.lifetime)
    )?;
    writeln!(
        w,
        "{{\"kind\":\"path_hist\",\"name\":\"path_kill_depth\",\"value\":{}}}",
        hist_json(&paths.kill_depth)
    )?;

    for (pc, s) in branches.sorted() {
        writeln!(
            w,
            "{{\"kind\":\"branch_pc\",\"pc\":{pc},\"resolved\":{},\"mispredicted\":{},\
             \"diverged\":{},\"forked\":{},\"low_incorrect\":{},\"low_correct\":{},\
             \"high_incorrect\":{},\"high_correct\":{},\"mispredict_rate\":{},\"pvn\":{}}}",
            s.resolved,
            s.mispredicted,
            s.diverged,
            s.forked,
            s.low_incorrect,
            s.low_correct,
            s.high_incorrect,
            s.high_correct,
            json_f64(s.mispredict_rate()),
            json_f64(s.pvn()),
        )?;
    }

    if let Some(p) = host {
        // A sub-resolution wall time has no KIPS figure; omit the row
        // rather than emit a poisoned 0.0 into downstream aggregation.
        if let Some(kips) = p.kips() {
            writeln!(
                w,
                "{{\"kind\":\"host\",\"name\":\"kips\",\"value\":{}}}",
                json_f64(kips)
            )?;
        }
        writeln!(
            w,
            "{{\"kind\":\"host\",\"name\":\"wall_seconds\",\"value\":{}}}",
            json_f64(p.wall.as_secs_f64())
        )?;
        for (name, d) in p.phases() {
            writeln!(
                w,
                "{{\"kind\":\"host\",\"name\":\"phase_{name}_seconds\",\"value\":{}}}",
                json_f64(d.as_secs_f64())
            )?;
        }
    }
    Ok(())
}

/// Write the cycle-sampled machine-state time series as CSV.
pub fn write_timeseries_csv<W: Write>(w: &mut W, ts: &TimeSeries) -> io::Result<()> {
    writeln!(
        w,
        "cycle,live_paths,fetching_paths,window_occupancy,frontend_occupancy"
    )?;
    for r in ts.rows() {
        writeln!(
            w,
            "{},{},{},{},{}",
            r.cycle, r.live_paths, r.fetching_paths, r.window_occupancy, r.frontend_occupancy
        )?;
    }
    Ok(())
}

/// Write the Chrome trace-event artifact
/// (`chrome://tracing` / Perfetto "load trace file" format).
pub fn write_chrome_trace<W: Write>(w: &mut W, trace: &ChromeTrace) -> io::Result<()> {
    write!(w, "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")?;
    let mut first = true;
    let sep = |w: &mut W, first: &mut bool| -> io::Result<()> {
        if !*first {
            write!(w, ",")?;
        }
        *first = false;
        Ok(())
    };

    // Metadata: name the process and one thread per path slot.
    sep(w, &mut first)?;
    write!(
        w,
        "{{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{{\"name\":\"polypath-sim\"}}}}"
    )?;
    for tid in trace.tids() {
        sep(w, &mut first)?;
        write!(
            w,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"path {tid}\"}}}}"
        )?;
    }

    for e in trace.events() {
        sep(w, &mut first)?;
        write!(
            w,
            "{{\"ph\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{},\"cat\":\"{}\",\"name\":\"{}\"",
            e.ph,
            e.tid,
            e.ts,
            json_escape(e.cat),
            json_escape(&e.name),
        )?;
        if e.ph == 'X' {
            write!(w, ",\"dur\":{}", e.dur)?;
        }
        if e.ph == 'i' {
            // Thread-scoped instant.
            write!(w, ",\"s\":\"t\"")?;
        }
        if !e.args.is_empty() {
            write!(w, ",\"args\":{{")?;
            for (i, (k, v)) in e.args.iter().enumerate() {
                if i > 0 {
                    write!(w, ",")?;
                }
                write!(w, "\"{}\":{v}", json_escape(k))?;
            }
            write!(w, "}}")?;
        }
        write!(w, "}}")?;
    }
    writeln!(w, "]}}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(2.5), "2.5");
    }

    #[test]
    fn metrics_jsonl_lines_are_json_objects() {
        let mut reg = Registry::new();
        let c = reg.counter("telemetry_events");
        reg.inc(c, 7);
        let h = reg.histogram("h");
        reg.observe(h, 3);
        let mut branches = BranchTable::new();
        branches.record_resolution(64, true, true, true);
        let paths = PathTable::new();
        let stats = SimStats {
            cycles: 10,
            committed_instructions: 20,
            ..Default::default()
        };

        let mut buf = Vec::new();
        write_metrics_jsonl(&mut buf, &stats, None, &reg, &branches, &paths).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(!text.is_empty());
        for line in text.lines() {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "bad line: {line}"
            );
            // Balanced braces and quotes — cheap structural sanity.
            let braces = line.matches('{').count() == line.matches('}').count();
            assert!(braces, "unbalanced: {line}");
            assert_eq!(
                line.matches('"').count() % 2,
                0,
                "unbalanced quotes: {line}"
            );
        }
        assert!(text.contains("\"name\":\"ipc\",\"value\":2"));
        assert!(text.contains("\"name\":\"telemetry_events\",\"value\":7"));
        assert!(text.contains("\"kind\":\"branch_pc\",\"pc\":64"));
        assert!(text.contains("path_kill_depth"));
    }

    #[test]
    fn timeseries_csv_shape() {
        use pp_core::CycleSample;
        let mut ts = TimeSeries::new(1);
        ts.offer(&CycleSample {
            cycle: 0,
            live_paths: 2,
            fetching_paths: 1,
            window_occupancy: 17,
            frontend_occupancy: 4,
        });
        let mut buf = Vec::new();
        write_timeseries_csv(&mut buf, &ts).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            "cycle,live_paths,fetching_paths,window_occupancy,frontend_occupancy"
        );
        assert_eq!(lines.next().unwrap(), "0,2,1,17,4");
    }

    #[test]
    fn chrome_trace_is_wellformed() {
        let mut t = ChromeTrace::new();
        t.span("add @12".into(), "exec", 0, 3, 6, vec![("fid", "9".into())]);
        t.instant("kill".into(), "kill", 2, 8);
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &t).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("{\"displayTimeUnit\""));
        assert!(text.trim_end().ends_with("]}"));
        assert!(text.contains("\"traceEvents\":["));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"dur\":3"));
        assert!(text.contains("\"ph\":\"i\""));
        assert!(text.contains("\"s\":\"t\""));
        assert!(text.contains("\"thread_name\""));
        assert!(text.contains("\"args\":{\"fid\":9}"));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
    }
}
