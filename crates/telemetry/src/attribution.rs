//! Attribution tables: metrics keyed by *who caused them* — the static
//! branch (by PC) and the dynamic path (by CTX-table slot generation).
//!
//! The aggregate counters in [`pp_core::SimStats`] answer "how much"; the
//! tables here answer "which branch" and "which path": which PCs diverge,
//! whether the confidence estimator is right *per branch site*, how long
//! eager paths live before the kill bus reaps them, and how much work dies
//! with them.

use std::collections::HashMap;

use pp_core::CycleSample;
use pp_ctx::PathId;

use crate::registry::Histogram;

/// Per-static-branch (per-PC) outcome counts, from `Resolved` events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcStats {
    /// Times a branch at this PC resolved (any path).
    pub resolved: u64,
    /// Resolutions where the prediction was wrong.
    pub mispredicted: u64,
    /// Resolutions that had forked both successors at fetch.
    pub diverged: u64,
    /// Divergences forked at fetch — counted when the fork happens, so
    /// (unlike `diverged`) it includes branches killed before resolving
    /// and sums exactly to `SimStats::divergences`.
    pub forked: u64,
    /// Confidence truth table: estimated low (diffident) and wrong.
    pub low_incorrect: u64,
    /// Estimated low but right (wasted fork, §5.1's PVN denominator).
    pub low_correct: u64,
    /// Estimated high yet wrong (full misprediction penalty).
    pub high_incorrect: u64,
    /// Estimated high and right.
    pub high_correct: u64,
}

impl PcStats {
    /// Misprediction rate at this site.
    pub fn mispredict_rate(&self) -> f64 {
        if self.resolved == 0 {
            0.0
        } else {
            self.mispredicted as f64 / self.resolved as f64
        }
    }

    /// Predictive value of a negative (low-confidence) estimate at this
    /// site — the per-PC version of [`pp_core::SimStats::pvn`].
    pub fn pvn(&self) -> f64 {
        let low = self.low_incorrect + self.low_correct;
        if low == 0 {
            0.0
        } else {
            self.low_incorrect as f64 / low as f64
        }
    }
}

/// Divergence/misprediction attribution across branch PCs.
#[derive(Debug, Clone, Default)]
pub struct BranchTable {
    by_pc: HashMap<usize, PcStats>,
}

impl BranchTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one `Resolved` event for the branch at `pc`.
    pub fn record_resolution(
        &mut self,
        pc: usize,
        mispredicted: bool,
        diverged: bool,
        conf_low: bool,
    ) {
        let s = self.by_pc.entry(pc).or_default();
        s.resolved += 1;
        if mispredicted {
            s.mispredicted += 1;
        }
        if diverged {
            s.diverged += 1;
        }
        match (conf_low, mispredicted) {
            (true, true) => s.low_incorrect += 1,
            (true, false) => s.low_correct += 1,
            (false, true) => s.high_incorrect += 1,
            (false, false) => s.high_correct += 1,
        }
    }

    /// Record a divergence forked at fetch for the branch at `pc`.
    pub fn record_divergence(&mut self, pc: usize) {
        self.by_pc.entry(pc).or_default().forked += 1;
    }

    /// Stats for one PC, if any branch there resolved.
    pub fn get(&self, pc: usize) -> Option<&PcStats> {
        self.by_pc.get(&pc)
    }

    /// Number of distinct branch sites seen.
    pub fn len(&self) -> usize {
        self.by_pc.len()
    }

    /// `true` when no branch has resolved yet.
    pub fn is_empty(&self) -> bool {
        self.by_pc.is_empty()
    }

    /// Sum of per-PC fetch-time divergence counts: always equal to
    /// `SimStats::divergences` for the same run.
    pub fn total_diverged(&self) -> u64 {
        self.by_pc.values().map(|s| s.forked).sum()
    }

    /// All sites sorted by PC (deterministic export order).
    pub fn sorted(&self) -> Vec<(usize, PcStats)> {
        let mut v: Vec<_> = self.by_pc.iter().map(|(pc, s)| (*pc, *s)).collect();
        v.sort_unstable_by_key(|(pc, _)| *pc);
        v
    }

    /// The `n` sites with the most divergences, most-divergent first.
    pub fn hottest_diverging(&self, n: usize) -> Vec<(usize, PcStats)> {
        let mut v = self.sorted();
        v.sort_by_key(|(_, s)| std::cmp::Reverse(s.forked));
        v.truncate(n);
        v
    }
}

/// One path slot generation: a CTX-table slot from (re)allocation until
/// its subtree is killed or the run ends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct OpenPath {
    first_cycle: u64,
    last_cycle: u64,
    fetched: u64,
    killed: u64,
}

/// Path-lifetime and kill-depth attribution across PathId generations.
///
/// `PathId`s are reused slot indices, so a "path" here is one
/// *generation* of a slot: it opens at the first event naming the slot
/// and closes when [`PathTable::close`] is called (the telemetry observer
/// does so when a `Diverged` event re-allocates the slot, and for all
/// still-open slots at the end of the run).
#[derive(Debug, Clone, Default)]
pub struct PathTable {
    open: HashMap<u32, OpenPath>,
    /// Histogram of generation lifetimes in cycles.
    pub lifetime: Histogram,
    /// Histogram of instructions killed per generation ("kill depth"):
    /// how much speculative work each reaped path carried.
    pub kill_depth: Histogram,
    generations: u64,
}

impl PathTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Note that `path` was active at `cycle` (opens a generation if the
    /// slot has none).
    pub fn touch(&mut self, path: PathId, cycle: u64) {
        self.touch_slot(path.index() as u32, cycle);
    }

    /// [`Self::touch`] by raw slot index (observers that only retained
    /// the index, e.g. from an earlier event, use this form).
    pub fn touch_slot(&mut self, slot: u32, cycle: u64) {
        let e = self.open.entry(slot).or_insert(OpenPath {
            first_cycle: cycle,
            last_cycle: cycle,
            ..Default::default()
        });
        e.last_cycle = e.last_cycle.max(cycle);
    }

    /// Note an instruction fetched on `path`.
    pub fn record_fetch(&mut self, path: PathId, cycle: u64) {
        self.touch(path, cycle);
        if let Some(e) = self.open.get_mut(&(path.index() as u32)) {
            e.fetched += 1;
        }
    }

    /// Note an instruction killed that was fetched on slot `slot`.
    pub fn record_kill_slot(&mut self, slot: u32, cycle: u64) {
        self.touch_slot(slot, cycle);
        if let Some(e) = self.open.get_mut(&slot) {
            e.killed += 1;
        }
    }

    /// Note an instruction killed that was fetched on `path`.
    pub fn record_kill(&mut self, path: PathId, cycle: u64) {
        self.record_kill_slot(path.index() as u32, cycle);
    }

    /// Close the open generation on `path` (slot reallocated or run
    /// over), folding it into the histograms. Lifetime is last touch
    /// minus first touch.
    pub fn close(&mut self, path: PathId) {
        if let Some(e) = self.open.remove(&(path.index() as u32)) {
            self.lifetime.record(e.last_cycle - e.first_cycle);
            self.kill_depth.record(e.killed);
            self.generations += 1;
        }
    }

    /// Close every open generation (end of run).
    pub fn close_all(&mut self) {
        let slots: Vec<u32> = self.open.keys().copied().collect();
        for s in slots {
            if let Some(e) = self.open.remove(&s) {
                self.lifetime.record(e.last_cycle - e.first_cycle);
                self.kill_depth.record(e.killed);
                self.generations += 1;
            }
        }
    }

    /// Completed generations folded into the histograms.
    pub fn generations(&self) -> u64 {
        self.generations
    }

    /// Generations still open.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }
}

/// A downsampled sequence of [`CycleSample`]s: one row every
/// `sample_every` cycles.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    sample_every: u64,
    rows: Vec<CycleSample>,
}

impl TimeSeries {
    /// Keep one sample every `sample_every` cycles (0 is treated as 1).
    pub fn new(sample_every: u64) -> Self {
        TimeSeries {
            sample_every: sample_every.max(1),
            rows: Vec::new(),
        }
    }

    /// The configured interval.
    pub fn interval(&self) -> u64 {
        self.sample_every
    }

    /// Offer a per-cycle sample; it is kept iff it falls on the interval.
    pub fn offer(&mut self, s: &CycleSample) {
        if s.cycle.is_multiple_of(self.sample_every) {
            self.rows.push(*s);
        }
    }

    /// The retained rows, in cycle order.
    pub fn rows(&self) -> &[CycleSample] {
        &self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_ctx::PathTable as CtxPathTable;

    fn pids(n: usize) -> Vec<PathId> {
        let mut t: CtxPathTable<()> = CtxPathTable::new(n);
        (0..n).map(|_| t.allocate(()).unwrap()).collect()
    }

    #[test]
    fn branch_table_truth_table_and_sums() {
        let mut t = BranchTable::new();
        t.record_divergence(100);
        t.record_divergence(100);
        t.record_resolution(100, true, true, true);
        t.record_resolution(100, false, true, true);
        t.record_resolution(100, false, false, false);
        t.record_resolution(200, true, false, false);
        let s = t.get(100).unwrap();
        assert_eq!(s.resolved, 3);
        assert_eq!(s.mispredicted, 1);
        assert_eq!(s.diverged, 2);
        assert_eq!(s.low_incorrect, 1);
        assert_eq!(s.low_correct, 1);
        assert_eq!(s.high_correct, 1);
        assert!((s.pvn() - 0.5).abs() < 1e-12);
        assert_eq!(s.forked, 2);
        assert_eq!(t.get(200).unwrap().high_incorrect, 1);
        assert_eq!(t.total_diverged(), 2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.hottest_diverging(1)[0].0, 100);
    }

    #[test]
    fn path_generation_lifecycle() {
        let p = pids(2);
        let mut t = PathTable::new();
        t.record_fetch(p[0], 10);
        t.record_fetch(p[0], 14);
        t.record_kill(p[0], 20);
        t.close(p[0]);
        assert_eq!(t.generations(), 1);
        assert_eq!(t.lifetime.count(), 1);
        assert_eq!(t.lifetime.max(), 10); // 20 - 10
        assert_eq!(t.kill_depth.max(), 1);

        // Slot reuse opens a fresh generation.
        t.record_fetch(p[0], 30);
        t.close_all();
        assert_eq!(t.generations(), 2);
        assert_eq!(t.open_count(), 0);
    }

    #[test]
    fn close_without_open_is_a_noop() {
        let p = pids(1);
        let mut t = PathTable::new();
        t.close(p[0]);
        assert_eq!(t.generations(), 0);
    }

    #[test]
    fn timeseries_downsamples() {
        let mut ts = TimeSeries::new(10);
        for c in 0..35 {
            ts.offer(&CycleSample {
                cycle: c,
                live_paths: 1,
                fetching_paths: 1,
                window_occupancy: 0,
                frontend_occupancy: 0,
            });
        }
        let cycles: Vec<u64> = ts.rows().iter().map(|r| r.cycle).collect();
        assert_eq!(cycles, vec![0, 10, 20, 30]);
        assert_eq!(ts.interval(), 10);
        assert_eq!(TimeSeries::new(0).interval(), 1);
    }
}
