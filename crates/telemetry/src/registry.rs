//! A typed metrics registry: counters, gauges, and log-bucketed
//! histograms behind static names.
//!
//! Instruments are registered once (getting back a copyable id) and
//! updated through the id — updates are a bounds-checked array index, no
//! hashing. A registry built disabled turns every update into an
//! immediate return so instrumented code can stay in place at zero cost.

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(usize);

/// Power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket `0` holds the value 0; bucket `b ≥ 1` holds values in
/// `[2^(b-1), 2^b)`. 65 buckets cover the whole `u64` range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for `v`.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Inclusive-exclusive value range `[lo, hi)` covered by bucket `b`
    /// (bucket 0 is the single value 0; the top bucket's `hi` saturates).
    pub fn bucket_range(b: usize) -> (u64, u64) {
        match b {
            0 => (0, 1),
            64 => (1 << 63, u64::MAX),
            _ => (1 << (b - 1), 1 << b),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile (`q` in
    /// 0..=1). An upper bound — not an interpolation — so it is exact for
    /// distributions that land in one bucket and conservative otherwise.
    pub fn quantile_ub(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (b, n) in self.buckets.iter().enumerate() {
            seen += n;
            if *n > 0 && seen >= rank {
                return Self::bucket_range(b).1.saturating_sub(1).min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(lo, hi, count)` triples.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(b, n)| {
                let (lo, hi) = Self::bucket_range(b);
                (lo, hi, *n)
            })
    }
}

/// The registry proper. Instrument names must be unique per kind;
/// registering an existing name returns the existing id.
#[derive(Debug, Default)]
pub struct Registry {
    enabled: bool,
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, f64)>,
    hists: Vec<(&'static str, Histogram)>,
}

impl Registry {
    /// A live registry.
    pub fn new() -> Self {
        Registry {
            enabled: true,
            ..Default::default()
        }
    }

    /// A disabled registry: instruments register normally, every update
    /// is a no-op, and exports see only zeros.
    pub fn disabled() -> Self {
        Registry::default()
    }

    /// Whether updates are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Register (or look up) a counter.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| *n == name) {
            return CounterId(i);
        }
        self.counters.push((name, 0));
        CounterId(self.counters.len() - 1)
    }

    /// Register (or look up) a gauge.
    pub fn gauge(&mut self, name: &'static str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(n, _)| *n == name) {
            return GaugeId(i);
        }
        self.gauges.push((name, 0.0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Register (or look up) a histogram.
    pub fn histogram(&mut self, name: &'static str) -> HistId {
        if let Some(i) = self.hists.iter().position(|(n, _)| *n == name) {
            return HistId(i);
        }
        self.hists.push((name, Histogram::new()));
        HistId(self.hists.len() - 1)
    }

    /// Add `by` to a counter.
    #[inline]
    pub fn inc(&mut self, id: CounterId, by: u64) {
        if self.enabled {
            self.counters[id.0].1 += by;
        }
    }

    /// Set a gauge to its latest value.
    #[inline]
    pub fn set(&mut self, id: GaugeId, value: f64) {
        if self.enabled {
            self.gauges[id.0].1 = value;
        }
    }

    /// Record a histogram sample.
    #[inline]
    pub fn observe(&mut self, id: HistId, value: u64) {
        if self.enabled {
            self.hists[id.0].1.record(value);
        }
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0].1
    }

    /// The histogram behind `id`.
    pub fn hist(&self, id: HistId) -> &Histogram {
        &self.hists[id.0].1
    }

    /// All counters as `(name, value)`.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().copied()
    }

    /// All gauges as `(name, value)`.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().copied()
    }

    /// All histograms as `(name, &Histogram)`.
    pub fn hists(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.hists.iter().map(|(n, h)| (*n, h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_roundtrip_and_dedup() {
        let mut r = Registry::new();
        let a = r.counter("fetched");
        let b = r.counter("fetched");
        assert_eq!(a, b);
        r.inc(a, 3);
        r.inc(b, 2);
        assert_eq!(r.counter_value(a), 5);
        assert_eq!(r.counters().count(), 1);
    }

    #[test]
    fn disabled_registry_ignores_updates() {
        let mut r = Registry::disabled();
        let c = r.counter("x");
        let g = r.gauge("y");
        let h = r.histogram("z");
        r.inc(c, 10);
        r.set(g, 1.5);
        r.observe(h, 42);
        assert_eq!(r.counter_value(c), 0);
        assert_eq!(r.gauge_value(g), 0.0);
        assert_eq!(r.hist(h).count(), 0);
        assert!(!r.is_enabled());
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_range(0), (0, 1));
        assert_eq!(Histogram::bucket_range(2), (2, 4));
        // Every value falls inside its bucket's range.
        for v in [0u64, 1, 2, 3, 7, 8, 1000, 1 << 40] {
            let (lo, hi) = Histogram::bucket_range(Histogram::bucket_of(v));
            assert!(lo <= v && v < hi || v >= 1 << 63, "{v} in [{lo},{hi})");
        }
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 10, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 116);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 23.2).abs() < 1e-12);
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        assert!(buckets.iter().all(|(_, _, n)| *n > 0));
        assert_eq!(buckets.iter().map(|(_, _, n)| n).sum::<u64>(), 5);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::new();
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile_ub(0.5), 0);
    }

    #[test]
    fn quantile_upper_bound_is_conservative() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(4);
        }
        h.record(1000);
        let q50 = h.quantile_ub(0.5);
        assert!((4..=7).contains(&q50), "median ub {q50}");
        assert_eq!(h.quantile_ub(1.0), 1000);
    }
}
