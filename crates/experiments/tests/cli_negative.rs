//! Negative-path tests for the experiment binaries' command-line
//! handling: malformed user input must produce one actionable stderr
//! line and exit status 2 — never a panic backtrace.
//!
//! These spawn the real binaries (via the `CARGO_BIN_EXE_*` paths cargo
//! provides to integration tests), so they cover the actual `main`
//! wiring, not just the parsing helpers.

use std::process::{Command, Output};

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("spawning {bin}: {e}"))
}

fn assert_usage_error(out: &Output, needles: &[&str]) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "expected usage-error exit 2, got {:?}; stderr: {stderr}",
        out.status.code()
    );
    for n in needles {
        assert!(stderr.contains(n), "stderr missing {n:?}: {stderr}");
    }
    assert!(
        !stderr.contains("panicked"),
        "usage error must not be a panic: {stderr}"
    );
}

#[test]
fn bench_kernel_rejects_zero_repeat() {
    let out = run(env!("CARGO_BIN_EXE_bench_kernel"), &["--repeat", "0"]);
    assert_usage_error(&out, &["--repeat", "positive integer"]);
}

#[test]
fn bench_kernel_rejects_non_numeric_repeat() {
    let out = run(env!("CARGO_BIN_EXE_bench_kernel"), &["--repeat", "lots"]);
    assert_usage_error(&out, &["--repeat", "\"lots\""]);
}

#[test]
fn bench_kernel_rejects_dangling_flag() {
    let out = run(env!("CARGO_BIN_EXE_bench_kernel"), &["--out"]);
    assert_usage_error(&out, &["--out needs a path"]);
}

#[test]
fn bench_kernel_rejects_unknown_argument() {
    let out = run(env!("CARGO_BIN_EXE_bench_kernel"), &["--frobnicate"]);
    assert_usage_error(&out, &["unknown argument", "--frobnicate"]);
}

#[test]
fn fuzz_check_rejects_bad_count() {
    let out = run(env!("CARGO_BIN_EXE_fuzz_check"), &["--count", "many"]);
    assert_usage_error(&out, &["--count", "\"many\""]);
}

#[test]
fn fuzz_check_rejects_zero_count() {
    let out = run(env!("CARGO_BIN_EXE_fuzz_check"), &["--count", "0"]);
    assert_usage_error(&out, &["--count must be at least 1"]);
}

#[test]
fn fuzz_check_rejects_negative_seed() {
    let out = run(env!("CARGO_BIN_EXE_fuzz_check"), &["--seed", "-3"]);
    assert_usage_error(&out, &["--seed", "\"-3\""]);
}

#[test]
fn run_all_rejects_dangling_telemetry_flag() {
    let out = run(env!("CARGO_BIN_EXE_run_all"), &["--telemetry-out"]);
    assert_usage_error(&out, &["--telemetry-out needs a directory"]);
}

#[test]
fn run_all_rejects_bad_sample_interval() {
    let out = run(
        env!("CARGO_BIN_EXE_run_all"),
        &["--telemetry-sample-every=sometimes"],
    );
    assert_usage_error(&out, &["--telemetry-sample-every", "\"sometimes\""]);
}
