//! Negative-path tests for the experiment binaries' command-line
//! handling: malformed user input must produce one actionable stderr
//! line and exit status 2 — never a panic backtrace.
//!
//! These spawn the real binaries (via the `CARGO_BIN_EXE_*` paths cargo
//! provides to integration tests), so they cover the actual `main`
//! wiring, not just the parsing helpers.

use std::process::{Command, Output};

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("spawning {bin}: {e}"))
}

fn assert_usage_error(out: &Output, needles: &[&str]) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "expected usage-error exit 2, got {:?}; stderr: {stderr}",
        out.status.code()
    );
    for n in needles {
        assert!(stderr.contains(n), "stderr missing {n:?}: {stderr}");
    }
    assert!(
        !stderr.contains("panicked"),
        "usage error must not be a panic: {stderr}"
    );
}

#[test]
fn bench_kernel_rejects_zero_repeat() {
    let out = run(env!("CARGO_BIN_EXE_bench_kernel"), &["--repeat", "0"]);
    assert_usage_error(&out, &["--repeat", "positive integer"]);
}

#[test]
fn bench_kernel_rejects_non_numeric_repeat() {
    let out = run(env!("CARGO_BIN_EXE_bench_kernel"), &["--repeat", "lots"]);
    assert_usage_error(&out, &["--repeat", "\"lots\""]);
}

#[test]
fn bench_kernel_rejects_dangling_flag() {
    let out = run(env!("CARGO_BIN_EXE_bench_kernel"), &["--out"]);
    assert_usage_error(&out, &["--out needs a path"]);
}

#[test]
fn bench_kernel_rejects_unknown_argument() {
    let out = run(env!("CARGO_BIN_EXE_bench_kernel"), &["--frobnicate"]);
    assert_usage_error(&out, &["unknown argument", "--frobnicate"]);
}

#[test]
fn fuzz_check_rejects_bad_count() {
    let out = run(env!("CARGO_BIN_EXE_fuzz_check"), &["--count", "many"]);
    assert_usage_error(&out, &["--count", "\"many\""]);
}

#[test]
fn fuzz_check_rejects_zero_count() {
    let out = run(env!("CARGO_BIN_EXE_fuzz_check"), &["--count", "0"]);
    assert_usage_error(&out, &["--count must be at least 1"]);
}

#[test]
fn fuzz_check_rejects_negative_seed() {
    let out = run(env!("CARGO_BIN_EXE_fuzz_check"), &["--seed", "-3"]);
    assert_usage_error(&out, &["--seed", "\"-3\""]);
}

#[test]
fn run_all_rejects_dangling_telemetry_flag() {
    let out = run(env!("CARGO_BIN_EXE_run_all"), &["--telemetry-out"]);
    assert_usage_error(&out, &["--telemetry-out needs a directory"]);
}

#[test]
fn run_all_rejects_bad_sample_interval() {
    let out = run(
        env!("CARGO_BIN_EXE_run_all"),
        &["--telemetry-sample-every=sometimes"],
    );
    assert_usage_error(&out, &["--telemetry-sample-every", "\"sometimes\""]);
}

// --- the unified sweep flag set -------------------------------------

#[test]
fn sweep_without_subcommand_prints_usage() {
    let out = run(env!("CARGO_BIN_EXE_sweep"), &[]);
    assert_usage_error(&out, &["usage: sweep"]);
}

#[test]
fn sweep_rejects_unknown_subcommand() {
    let out = run(env!("CARGO_BIN_EXE_sweep"), &["frobnicate"]);
    assert_usage_error(&out, &["unknown subcommand", "frobnicate"]);
}

#[test]
fn sweep_run_rejects_unknown_experiment() {
    let out = run(env!("CARGO_BIN_EXE_sweep"), &["run", "fig99"]);
    assert_usage_error(&out, &["unknown experiment", "fig99", "fig9"]);
}

#[test]
fn sweep_run_without_names_is_a_usage_error() {
    let out = run(env!("CARGO_BIN_EXE_sweep"), &["run"]);
    assert_usage_error(&out, &["at least one experiment name"]);
}

#[test]
fn sweep_rejects_unknown_flag() {
    let out = run(
        env!("CARGO_BIN_EXE_sweep"),
        &["run", "fig9", "--frobnicate"],
    );
    assert_usage_error(&out, &["unknown argument", "--frobnicate"]);
}

#[test]
fn sweep_rejects_dangling_workers() {
    let out = run(env!("CARGO_BIN_EXE_sweep"), &["run", "fig9", "--workers"]);
    assert_usage_error(&out, &["--workers needs a thread count"]);
}

#[test]
fn sweep_rejects_bad_max_cells() {
    let out = run(
        env!("CARGO_BIN_EXE_sweep"),
        &["run", "fig9", "--max-cells=-1"],
    );
    assert_usage_error(&out, &["--max-cells", "\"-1\""]);
}

#[test]
fn sweep_rejects_dangling_telemetry_out() {
    let out = run(
        env!("CARGO_BIN_EXE_sweep"),
        &["run", "fig9", "--telemetry-out"],
    );
    assert_usage_error(&out, &["--telemetry-out needs a directory"]);
}

#[test]
fn fig_shims_reject_unknown_flags_and_positionals() {
    // Every migrated figure binary shares SweepOpts; spot-check two.
    let out = run(env!("CARGO_BIN_EXE_fig9_predictor_size"), &["--frobnicate"]);
    assert_usage_error(&out, &["unknown argument", "--frobnicate"]);
    let out = run(env!("CARGO_BIN_EXE_table1"), &["extra"]);
    assert_usage_error(&out, &["unexpected argument", "extra"]);
}

#[test]
fn workload_profile_rejects_unknown_workload() {
    let out = run(env!("CARGO_BIN_EXE_workload_profile"), &["pascal"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "stderr: {stderr}");
    assert!(stderr.contains("unknown workload `pascal`"), "{stderr}");
    assert!(stderr.contains("compress"), "{stderr}");
}

#[test]
fn run_all_rejects_conflicting_out_dirs() {
    let out = run(
        env!("CARGO_BIN_EXE_run_all"),
        &["somewhere", "--out-dir", "elsewhere"],
    );
    assert_usage_error(&out, &["both positionally and via --out-dir"]);
}
