//! Golden-equivalence suite: full [`SimStats`] snapshots for every seed
//! workload under three representative configurations.
//!
//! These snapshots pin the *exact* simulated behavior of the kernel —
//! every counter, byte for byte. Any optimization of the cycle loop must
//! leave all of them untouched; any intentional model change must
//! regenerate them (`PP_UPDATE_GOLDEN=1 cargo test -p pp-experiments
//! --test golden`) and justify the diff in review.
//!
//! The workload scales here are fixed small constants, deliberately
//! independent of `PP_SCALE`: the snapshots are committed files, so the
//! inputs that produce them must never vary with the environment.
//!
//! The suite is tier-2: it only compares under `--release` (a debug
//! sweep of 24 cells takes ~10 minutes and would dominate every
//! workspace test run — the simulated results themselves are identical
//! in both profiles, which `cargo test --release` CI verifies).
//! Regenerate with:
//!
//! ```sh
//! PP_UPDATE_GOLDEN=1 cargo test --release -p pp-experiments --test golden
//! ```

use pp_core::Simulator;
use pp_experiments::experiments::BASELINE_HISTORY_BITS;
use pp_experiments::{named_config, Config};
use pp_testutil::golden::{check_golden, golden_dir};
use pp_workloads::Workload;

/// Snapshot scale for `w`: ~1/64 of the paper evaluation's dynamic
/// instruction count, floored so even the smallest workload exercises
/// warm predictors and a saturated window.
fn golden_scale(w: Workload) -> u64 {
    (w.default_scale() / 64).max(2000)
}

/// Filename-safe key for a configuration (labels contain `/`).
fn config_key(c: Config) -> &'static str {
    match c {
        Config::Oracle => "oracle",
        Config::Monopath => "monopath",
        Config::SeeOracle => "see_oracle",
        Config::SeeJrs => "see_jrs",
        Config::DualOracle => "dual_oracle",
        Config::DualJrs => "dual_jrs",
    }
}

/// Run every workload under `c` and compare (or regenerate) snapshots.
fn check_config(c: Config) {
    if cfg!(debug_assertions) && !pp_testutil::golden::update_mode() {
        eprintln!(
            "golden[{}]: tier-2 suite, skipped in debug builds — \
             run with --release",
            config_key(c)
        );
        return;
    }
    let cfg = named_config(c, BASELINE_HISTORY_BITS);
    for w in Workload::ALL {
        let program = w.build(golden_scale(w));
        let stats = Simulator::new(&program, cfg.clone()).run();
        assert!(!stats.hit_cycle_limit, "{w} hit the cycle limit");
        let path = golden_dir().join(format!("{}_{}.json", w.name(), config_key(c)));
        check_golden(&path, &stats.to_json());
    }
}

// One test per configuration so the three run in parallel under the
// default libtest harness.

#[test]
fn golden_monopath() {
    check_config(Config::Monopath);
}

#[test]
fn golden_see_jrs() {
    check_config(Config::SeeJrs);
}

#[test]
fn golden_dual_jrs() {
    check_config(Config::DualJrs);
}
