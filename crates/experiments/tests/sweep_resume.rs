//! Interrupt/resume golden test for the sweep engine, driven through
//! the real `sweep` binary (ISSUE acceptance: an interrupted sweep
//! resumed against the same cache recomputes nothing and produces
//! byte-identical merged outputs).
//!
//! The "interrupt" is the deterministic `--max-cells N` budget: the run
//! simulates N cells, persists them, and exits non-zero with the
//! remaining cells reported as skipped — exactly the state a Ctrl-C
//! between cells leaves behind, without the flakiness of killing a
//! process at a random instruction.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Workload scale multiplier: tiny, but identical across every run in
/// this test so cache fingerprints line up.
const SCALE: &str = "0.02";

struct Dirs {
    root: PathBuf,
}

impl Dirs {
    fn new(name: &str) -> Self {
        let root =
            std::env::temp_dir().join(format!("pp-sweep-resume-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        Dirs { root }
    }
    fn path(&self, sub: &str) -> PathBuf {
        self.root.join(sub)
    }
}

impl Drop for Dirs {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn sweep(dirs: &Dirs, cache: &str, out: &str, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sweep"))
        .arg("run")
        .arg("table1")
        .arg("--cache-dir")
        .arg(dirs.path(cache))
        .arg("--out-dir")
        .arg(dirs.path(out))
        .args(extra)
        .env("PP_SCALE", SCALE)
        .output()
        .expect("spawning sweep")
}

/// Every regular file under `dir`, keyed by relative path.
fn tree(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in std::fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path.strip_prefix(root).unwrap().display().to_string();
                out.insert(rel, std::fs::read(&path).unwrap());
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(dir, dir, &mut out);
    out
}

#[test]
fn interrupted_sweep_resumes_to_byte_identical_artifacts() {
    let dirs = Dirs::new("golden");

    // Control: one uninterrupted run against a fresh cache.
    let control = sweep(&dirs, "cache_control", "out_control", &[]);
    assert!(
        control.status.success(),
        "control run failed: {}",
        String::from_utf8_lossy(&control.stderr)
    );

    // "Interrupted" run: budget of 3 of table1's 8 cells, fresh cache.
    // It must exit non-zero (the experiment could not render) while
    // still persisting the 3 finished cells.
    let partial = sweep(&dirs, "cache", "out_partial", &["--max-cells", "3"]);
    let stderr = String::from_utf8_lossy(&partial.stderr);
    assert_eq!(
        partial.status.code(),
        Some(1),
        "partial run should fail rendering; stderr: {stderr}"
    );
    assert!(
        stderr.contains("5 skipped"),
        "partial-run summary should count the skipped cells: {stderr}"
    );
    assert!(
        !dirs.path("out_partial").exists() || tree(&dirs.path("out_partial")).is_empty(),
        "an incomplete sweep must not write partial artifacts"
    );

    // Resume against the same cache: the 3 finished cells are hits, the
    // remaining 5 simulate, and the merged artifacts are byte-identical
    // to the uninterrupted control run.
    let resumed = sweep(&dirs, "cache", "out_resumed", &["--resume"]);
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(resumed.status.success(), "resume failed: {stderr}");
    assert!(
        stderr.contains("5 simulated, 3 cached"),
        "resume should reuse exactly the interrupted run's cells: {stderr}"
    );
    assert_eq!(
        tree(&dirs.path("out_resumed")),
        tree(&dirs.path("out_control")),
        "resumed artifacts differ from the uninterrupted run"
    );
    // The stdout reports match too, modulo the `wrote <path>` lines
    // that name the (deliberately different) output directories.
    let rendered = |out: &Output| -> String {
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter(|l| !l.starts_with("wrote "))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        rendered(&resumed),
        rendered(&control),
        "resumed stdout report differs from the uninterrupted run"
    );

    // A third run is pure cache: zero recomputation, still identical.
    let warm = sweep(&dirs, "cache", "out_warm", &[]);
    let stderr = String::from_utf8_lossy(&warm.stderr);
    assert!(warm.status.success(), "warm run failed: {stderr}");
    assert!(
        stderr.contains("0 simulated, 8 cached"),
        "warm rerun should be a 100% cache hit: {stderr}"
    );
    assert_eq!(
        tree(&dirs.path("out_warm")),
        tree(&dirs.path("out_control"))
    );
}

#[test]
fn max_cells_zero_simulates_nothing_but_persists_nothing_extra() {
    let dirs = Dirs::new("budget0");
    let out = sweep(&dirs, "cache", "out", &["--max-cells", "0"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("0 simulated"), "{stderr}");
    assert!(stderr.contains("8 skipped"), "{stderr}");
}
