//! Fast-forward must be byte-invisible: enabling quiescent-cycle elision
//! (`SimConfig::fast_forward`) must leave every committed golden
//! `SimStats` snapshot untouched — the fast-forwarded machine commits
//! the *same* history, cycle counts, stall accounts, and occupancy sums
//! as the cycle-by-cycle machine.
//!
//! Same shape and scale as `tests/trace_invisibility.rs`: all 8
//! workloads × 3 configurations against the committed snapshots
//! themselves. Tier-2 like the golden suite (skipped in debug builds;
//! CI runs `--release`). In `PP_UPDATE_GOLDEN=1` runs the suite also
//! skips — regeneration is `tests/golden.rs`'s job, and two tests
//! writing the same snapshot concurrently would race.

use pp_core::Simulator;
use pp_experiments::experiments::BASELINE_HISTORY_BITS;
use pp_experiments::{named_config, Config};
use pp_testutil::golden::{check_golden, golden_dir};
use pp_workloads::Workload;

/// Same fixed scale as `tests/golden.rs` (snapshots are committed
/// files, so their inputs never vary with `PP_SCALE`).
fn golden_scale(w: Workload) -> u64 {
    (w.default_scale() / 64).max(2000)
}

fn check_config(c: Config, key: &'static str) {
    if cfg!(debug_assertions) || pp_testutil::golden::update_mode() {
        eprintln!(
            "fast_forward_invisibility[{key}]: tier-2 suite, skipped in \
             debug builds and golden-update runs — run with --release"
        );
        return;
    }
    let cfg = named_config(c, BASELINE_HISTORY_BITS).with_fast_forward();
    for w in Workload::ALL {
        let program = w.build(golden_scale(w));
        let mut sim = Simulator::new(&program, cfg.clone());
        let stats = sim.run();
        assert!(sim.halted(), "{w}/{key}: run completed");

        // Byte-identical to the committed golden snapshot produced by a
        // cycle-by-cycle run.
        let path = golden_dir().join(format!("{}_{}.json", w.name(), key));
        check_golden(&path, &stats.to_json());
    }
}

#[test]
fn fast_forwarded_monopath_matches_golden() {
    check_config(Config::Monopath, "monopath");
}

#[test]
fn fast_forwarded_see_jrs_matches_golden() {
    check_config(Config::SeeJrs, "see_jrs");
}

#[test]
fn fast_forwarded_dual_jrs_matches_golden() {
    check_config(Config::DualJrs, "dual_jrs");
}
