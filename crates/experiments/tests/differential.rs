//! Differential suite: the golden 8×3 workload × configuration matrix,
//! re-run with the lock-step oracle and the per-cycle sanitizer armed.
//!
//! Where the golden suite pins *what* the simulator computes (byte-exact
//! `SimStats`), this suite checks *that it computes it correctly*: every
//! committed instruction is compared against the architectural emulator
//! in lock step, and the machine's internal invariants (CTX tag
//! hierarchy, wakeup/completion bookkeeping, store-buffer filtering,
//! register conservation) are validated after every cycle. Any
//! divergence or violation panics with a cycle-stamped report.
//!
//! Tier-2 like the golden suite: the sanitizer multiplies run time, so
//! the full matrix only runs under `--release` (CI's `check` job);
//! in debug builds each test is a fast no-op with a notice.

use pp_core::Simulator;
use pp_experiments::experiments::BASELINE_HISTORY_BITS;
use pp_experiments::{named_config, Config};
use pp_workloads::Workload;

/// Same scale the golden snapshots use, so this suite vouches for
/// exactly the runs the golden suite pins.
fn golden_scale(w: Workload) -> u64 {
    (w.default_scale() / 64).max(2000)
}

fn check_config(c: Config) {
    if cfg!(debug_assertions) {
        eprintln!(
            "differential[{c:?}]: tier-2 suite, skipped in debug builds — run with --release"
        );
        return;
    }
    let cfg = named_config(c, BASELINE_HISTORY_BITS)
        .with_commit_checking()
        .with_sanitizer();
    for w in Workload::ALL {
        let program = w.build(golden_scale(w));
        let mut sim = Simulator::new(&program, cfg.clone());
        let stats = sim.run();
        // The oracle/sanitizer panic on any divergence or violation, so
        // reaching here means the run was clean; classify truncation too.
        sim.finish_commit_check();
        assert!(!stats.hit_cycle_limit, "{w} hit the cycle limit");
        assert!(stats.committed_instructions > 0, "{w} committed nothing");
    }
}

#[test]
fn differential_monopath() {
    check_config(Config::Monopath);
}

#[test]
fn differential_see_jrs() {
    check_config(Config::SeeJrs);
}

#[test]
fn differential_dual_jrs() {
    check_config(Config::DualJrs);
}
