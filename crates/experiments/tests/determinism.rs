//! Harness-level determinism: `run_matrix` must produce bit-identical
//! `MatrixResult` vectors run-to-run *and* across worker-thread counts.
//!
//! The paper's evaluation (and the golden-equivalence suite) lean on
//! this: a sweep is only comparable to a previous sweep if thread
//! scheduling can never leak into simulated results or their order.

use pp_experiments::{named_config, run_matrix, run_matrix_with_workers, Config, MatrixResult};
use pp_workloads::Workload;

fn configs() -> Vec<pp_core::SimConfig> {
    vec![
        named_config(Config::Monopath, 10),
        named_config(Config::SeeJrs, 10),
    ]
}

fn assert_identical(a: &[MatrixResult], b: &[MatrixResult], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: result count differs");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(
            (x.workload, x.config_index),
            (y.workload, y.config_index),
            "{what}: cell order differs"
        );
        assert_eq!(
            x.stats, y.stats,
            "{what}: stats differ for {} / config {}",
            x.workload, x.config_index
        );
    }
}

#[test]
fn matrix_identical_across_runs_and_worker_counts() {
    // This test binary runs alone in its own process, so scaling the
    // workloads down here cannot race with other tests.
    std::env::set_var("PP_SCALE", "0.005");
    let workloads = Workload::ALL;
    let configs = configs();

    let serial = run_matrix_with_workers(&workloads, &configs, 1);
    assert_eq!(serial.len(), workloads.len() * configs.len());
    for cell in &serial {
        assert!(cell.stats.committed_instructions > 0);
        assert!(!cell.stats.hit_cycle_limit);
    }

    // Same worker count, run twice: identical.
    let serial2 = run_matrix_with_workers(&workloads, &configs, 1);
    assert_identical(&serial, &serial2, "serial repeat");

    // A second worker count: identical to serial.
    let threaded = run_matrix_with_workers(&workloads, &configs, 4);
    assert_identical(&serial, &threaded, "1 vs 4 workers");

    // And the default entry point (however many cores CI has).
    let auto = run_matrix(&workloads, &configs);
    assert_identical(&serial, &auto, "1 worker vs default");
}
