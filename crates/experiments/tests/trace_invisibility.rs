//! Observability must be byte-invisible: enabling the stall accountant,
//! the flight recorder, and a span-collecting observer must leave every
//! committed golden `SimStats` snapshot untouched — the instrumented
//! machine is the *same* machine.
//!
//! This mirrors `self_profiling_is_invisible_to_stats` (pp-core), but at
//! the golden suite's scale and against the committed snapshots
//! themselves: all 8 workloads × 3 configurations. Tier-2 like the
//! golden suite (skipped in debug builds; CI runs `--release`). In
//! `PP_UPDATE_GOLDEN=1` runs the suite also skips — regeneration is
//! `tests/golden.rs`'s job, and two tests writing the same snapshot
//! concurrently would race.

use pp_core::{Simulator, DEFAULT_FLIGHT_DEPTH};
use pp_experiments::experiments::BASELINE_HISTORY_BITS;
use pp_experiments::{named_config, Config};
use pp_testutil::golden::{check_golden, golden_dir};
use pp_trace::SpanCollector;
use pp_workloads::Workload;

/// Same fixed scale as `tests/golden.rs` (snapshots are committed
/// files, so their inputs never vary with `PP_SCALE`).
fn golden_scale(w: Workload) -> u64 {
    (w.default_scale() / 64).max(2000)
}

fn check_config(c: Config, key: &'static str) {
    if cfg!(debug_assertions) || pp_testutil::golden::update_mode() {
        eprintln!(
            "trace_invisibility[{key}]: tier-2 suite, skipped in debug \
             builds and golden-update runs — run with --release"
        );
        return;
    }
    let cfg = named_config(c, BASELINE_HISTORY_BITS);
    for w in Workload::ALL {
        let program = w.build(golden_scale(w));
        let mut sim = Simulator::new(&program, cfg.clone());
        sim.enable_stall_accounting();
        sim.enable_flight_recorder(DEFAULT_FLIGHT_DEPTH);
        sim.set_observer(Box::new(SpanCollector::new()));
        let stats = sim.run();

        // The full instrumentation stack ran...
        let st = sim.stall_stack().expect("accounting enabled");
        assert_eq!(
            st.total_slots(),
            stats.cycles * cfg.commit_width as u64,
            "{w}/{key}: stall conservation"
        );
        assert_eq!(
            sim.flight_recorder().expect("recorder enabled").pushed(),
            stats.cycles,
            "{w}/{key}: recorder saw every cycle"
        );
        let spans =
            SpanCollector::from_box(sim.take_observer().expect("attached")).expect("downcasts");
        assert_eq!(spans.len() as u64, stats.fetched_instructions);

        // ...and the stats are still byte-identical to the committed
        // golden snapshot produced by an uninstrumented run.
        let path = golden_dir().join(format!("{}_{}.json", w.name(), key));
        check_golden(&path, &stats.to_json());
    }
}

#[test]
fn instrumented_monopath_matches_golden() {
    check_config(Config::Monopath, "monopath");
}

#[test]
fn instrumented_see_jrs_matches_golden() {
    check_config(Config::SeeJrs, "see_jrs");
}

#[test]
fn instrumented_dual_jrs_matches_golden() {
    check_config(Config::DualJrs, "dual_jrs");
}
