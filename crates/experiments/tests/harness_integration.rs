//! Integration tests of the experiment harness at tiny scale: every
//! table/figure function produces structurally sound results.

use pp_experiments::experiments::{self, config_index, BASELINE_HISTORY_BITS, SWEEP_SERIES};
use pp_experiments::{harmonic_mean, named_config, Config, CONFIG_ORDER};
use pp_workloads::Workload;

fn tiny_scale() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| std::env::set_var("PP_SCALE", "0.02"));
}

#[test]
fn table1_rows_cover_all_workloads() {
    tiny_scale();
    let rows = experiments::table1();
    assert_eq!(rows.len(), Workload::ALL.len());
    for r in &rows {
        assert!(r.instructions > 1_000, "{}", r.workload);
        assert!(r.cond_branches > 100, "{}", r.workload);
        assert!((0.0..=1.0).contains(&r.mispredict_rate), "{}", r.workload);
        assert!((0.0..=1.0).contains(&r.taken_rate), "{}", r.workload);
    }
}

#[test]
fn fig8_matrix_is_complete_and_consistent() {
    tiny_scale();
    let data = experiments::fig8();
    assert_eq!(data.cells.len(), Workload::ALL.len());
    for row in &data.cells {
        assert_eq!(row.len(), CONFIG_ORDER.len());
        for stats in row {
            assert!(stats.committed_instructions > 0);
        }
    }
    // The harmonic means must match a recomputation.
    for (ci, &c) in CONFIG_ORDER.iter().enumerate() {
        let ipcs: Vec<f64> = data.cells.iter().map(|r| r[ci].ipc()).collect();
        assert!((data.hmean(c) - harmonic_mean(&ipcs)).abs() < 1e-12);
    }
    // Oracle must dominate all real configurations.
    for &c in &CONFIG_ORDER {
        assert!(
            data.hmean(Config::Oracle) >= data.hmean(c) * 0.999,
            "oracle must dominate {}",
            c.label()
        );
    }
    // Committed instruction counts are architectural (mode-independent).
    for row in &data.cells {
        let reference = row[0].committed_instructions;
        for stats in row {
            assert_eq!(stats.committed_instructions, reference);
        }
    }
}

#[test]
fn sec51_and_sec52_derive_from_fig8() {
    tiny_scale();
    let data = experiments::fig8();
    let rows = experiments::sec51(&data);
    assert_eq!(rows.len(), Workload::ALL.len());
    for r in &rows {
        assert!(r.mono_fetch_ratio >= 1.0, "{}", r.workload);
        assert!((0.0..=1.0).contains(&r.pvn), "{}", r.workload);
    }
    let s = experiments::sec52(&data);
    assert!(s.mean_paths_see >= 1.0);
    assert!((0.0..=1.0).contains(&s.paths_le3_see));
}

#[test]
fn sweep_points_are_well_formed() {
    tiny_scale();
    let points = experiments::fig12(&[6, 10]);
    assert_eq!(points.len(), 2);
    for p in &points {
        assert_eq!(p.hmean_ipc.len(), SWEEP_SERIES.len());
        assert!(p.hmean_ipc.iter().all(|v| *v > 0.0));
    }
    // Deeper pipeline costs the monopath machine cycles.
    let mono = 1;
    assert!(
        points[0].hmean_ipc[mono] > points[1].hmean_ipc[mono],
        "6-stage monopath must beat 10-stage"
    );
}

#[test]
fn fig9_state_accounting() {
    tiny_scale();
    let points = experiments::fig9(&[10, 12]);
    // 10 bits: 1k counters → 256 B PHT + 128 B JRS.
    assert_eq!(points[0].state_bytes, 256 + 128);
    assert_eq!(points[1].state_bytes, 1024 + 512);
    assert!(points[1].mispredict_rate <= points[0].mispredict_rate + 0.05);
}

#[test]
fn run_named_works_for_every_config() {
    tiny_scale();
    for c in CONFIG_ORDER {
        let stats = experiments::run_named(Workload::Vortex, c);
        assert!(stats.committed_instructions > 0, "{}", c.label());
    }
    let _ = config_index(Config::Oracle);
    let _ = named_config(Config::SeeJrs, BASELINE_HISTORY_BITS);
}
