//! Every table and figure of the evaluation as a named [`Experiment`].
//!
//! Each experiment declares its sweep grid (workload × configuration
//! cells) and a pure `render` step that turns completed [`CellResult`]s
//! into stdout text and artifact files. The [`pp_sweep::SweepEngine`]
//! runs the grids — with the result cache, work stealing, and typed
//! per-cell failures — so experiments that share cells (Fig. 8, §5.1,
//! §5.2 all use the same 48-cell matrix) pay for them once.
//!
//! The `sweep` binary exposes this registry as subcommands
//! (`sweep run fig9`); the historical per-figure binaries are thin
//! shims over [`shim_main`].

use std::fmt::Write as _;

use pp_core::{
    CacheConfig, ConfidenceKind, FetchPolicy, PredictorKind, SimConfig, SimStats, Simulator,
};
use pp_predictor::AdaptiveConfig;
use pp_sweep::{
    run_experiment, CellResult, Experiment, ExperimentOutcome, Rendered, SweepCell, SweepEngine,
};
use pp_workloads::Workload;

use crate::cli::SweepOpts;
use crate::configs::{named_config, Config, CONFIG_ORDER};
use crate::experiments::{
    self, config_index, fig10_config, fig11_config, fig12_config, fig9_config, fig9_state_bytes,
    Fig8, SweepPoint, BASELINE_HISTORY_BITS, FIG10_WINDOWS, FIG11_FUS, FIG12_DEPTHS, FIG9_BITS,
    SWEEP_SERIES,
};
use crate::harness::{
    geometric_mean, harmonic_mean, run_workload_telemetered, scale_factor, scaled, speedup_frac,
    speedup_pct, TelemetryOpts,
};
use crate::{Chart, Table};

/// Number of workloads in every matrix (rows of each grid block).
const W: usize = Workload::ALL.len();

// ---------------------------------------------------------------------
// Grid/result helpers
// ---------------------------------------------------------------------

/// `Workload::ALL × configs` as sweep cells, workload-major — the same
/// order `run_matrix` produces.
fn matrix_grid(configs: &[SimConfig]) -> Vec<SweepCell> {
    Workload::ALL
        .iter()
        .flat_map(|&w| configs.iter().map(move |c| SweepCell::new(w, c.clone())))
        .collect()
}

/// The six Fig. 8 configurations at baseline history bits.
fn baseline_configs() -> Vec<SimConfig> {
    CONFIG_ORDER
        .iter()
        .map(|&c| named_config(c, BASELINE_HISTORY_BITS))
        .collect()
}

/// Per-configuration harmonic-mean IPC over a workload-major slice.
fn hmeans_of(results: &[CellResult], nconfigs: usize) -> Vec<f64> {
    (0..nconfigs)
        .map(|ci| {
            let ipcs: Vec<f64> = (0..results.len() / nconfigs)
                .map(|wi| results[wi * nconfigs + ci].stats.ipc())
                .collect();
            harmonic_mean(&ipcs)
        })
        .collect()
}

/// Rebuild the [`Fig8`] analysis struct from the baseline matrix cells.
fn fig8_from(results: &[CellResult]) -> Fig8 {
    let n = CONFIG_ORDER.len();
    let cells: Vec<Vec<SimStats>> = (0..W)
        .map(|wi| {
            (0..n)
                .map(|ci| results[wi * n + ci].stats.clone())
                .collect()
        })
        .collect();
    let hmean_ipc = (0..n)
        .map(|ci| {
            let ipcs: Vec<f64> = cells.iter().map(|row| row[ci].ipc()).collect();
            harmonic_mean(&ipcs)
        })
        .collect();
    Fig8 { cells, hmean_ipc }
}

/// The grid of one scalability figure: for each x-point, the four
/// [`SWEEP_SERIES`] configurations across all workloads.
fn sweep_grid(xs: &[u64], make: &dyn Fn(Config, u64) -> SimConfig) -> Vec<SweepCell> {
    xs.iter()
        .flat_map(|&x| {
            let configs: Vec<SimConfig> = SWEEP_SERIES.iter().map(|&c| make(c, x)).collect();
            matrix_grid(&configs)
        })
        .collect()
}

/// Rebuild the per-point sweep summaries from a [`sweep_grid`]'s cells.
fn sweep_points_from(results: &[CellResult], xs: &[u64]) -> Vec<SweepPoint> {
    let n = SWEEP_SERIES.len();
    let per_point = W * n;
    xs.iter()
        .enumerate()
        .map(|(pi, &x)| {
            let slice = &results[pi * per_point..(pi + 1) * per_point];
            let mono = 1; // index of Config::Monopath in SWEEP_SERIES
            let rates: Vec<f64> = (0..W)
                .map(|wi| slice[wi * n + mono].stats.mispredict_rate().max(1e-6))
                .collect();
            SweepPoint {
                x,
                state_bytes: 0,
                hmean_ipc: hmeans_of(slice, n),
                mispredict_rate: geometric_mean(&rates),
            }
        })
        .collect()
}

/// The ASCII chart every scalability figure prints.
fn sweep_chart(points: &[SweepPoint]) -> Chart {
    let mut chart = Chart::new("harmonic-mean IPC (y) vs swept parameter (x)", "IPC");
    for (si, cfg) in SWEEP_SERIES.iter().enumerate() {
        chart.series(
            cfg.label(),
            points.iter().map(|p| (p.x as f64, p.hmean_ipc[si])),
        );
    }
    chart
}

/// The CSV artifact format `run_all` always wrote for the sweeps.
fn sweep_csv(points: &[SweepPoint], x_name: &str) -> String {
    let mut t = Table::new(
        std::iter::once(x_name.to_string())
            .chain(SWEEP_SERIES.iter().map(|c| c.label().to_string())),
    );
    for p in points {
        t.row(
            std::iter::once(p.x.to_string()).chain(p.hmean_ipc.iter().map(|v| format!("{v:.4}"))),
        );
    }
    t.to_csv()
}

/// The stdout table shared by Figs. 10–12 (Fig. 9 adds extra columns).
fn sweep_stdout_table(points: &[SweepPoint], x_name: &str) -> Table {
    let mut t = Table::new(
        std::iter::once(x_name.to_string())
            .chain(SWEEP_SERIES.iter().map(|c| c.label().to_string())),
    );
    for p in points {
        t.row(
            std::iter::once(p.x.to_string()).chain(p.hmean_ipc.iter().map(|v| format!("{v:.3}"))),
        );
    }
    t
}

// ---------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------

/// Table 1 — benchmark characteristics.
pub struct Table1Exp;

impl Experiment for Table1Exp {
    fn name(&self) -> &'static str {
        "table1"
    }
    fn description(&self) -> &'static str {
        "Table 1 — benchmark characteristics (sizes, taken rate, gshare-14 misprediction)"
    }
    fn grid(&self) -> Vec<SweepCell> {
        matrix_grid(std::slice::from_ref(&named_config(
            Config::Monopath,
            BASELINE_HISTORY_BITS,
        )))
    }
    fn render(&self, results: &[CellResult]) -> Rendered {
        let rows: Vec<_> = Workload::ALL
            .iter()
            .zip(results)
            .map(|(&w, r)| {
                let func = w.characterize(scaled(w));
                (w, func, r.stats.mispredict_rate())
            })
            .collect();

        let mut out = String::new();
        let mut t = Table::new([
            "benchmark",
            "instructions (K)",
            "cond branches (K)",
            "taken %",
            "mispredict %",
        ]);
        for (w, func, mispredict) in &rows {
            let taken = func.taken_branches as f64 / func.cond_branches.max(1) as f64;
            t.row([
                w.name().to_string(),
                format!("{:.1}", func.instructions as f64 / 1e3),
                format!("{:.1}", func.cond_branches as f64 / 1e3),
                format!("{:.1}", 100.0 * taken),
                format!("{:.2}", 100.0 * mispredict),
            ]);
        }
        let mean = rows.iter().map(|(_, _, m)| m).sum::<f64>() / rows.len() as f64;
        let _ = writeln!(
            out,
            "Table 1 — workload characteristics (paper: 1.9%…24.8%, mean 7.2%)"
        );
        let _ = writeln!(out, "{t}");
        let _ = writeln!(out, "mean misprediction rate: {:.2}%", 100.0 * mean);

        // The CSV artifact keeps `run_all`'s historical full-precision
        // column set.
        let mut csv = Table::new([
            "benchmark",
            "instructions",
            "cond_branches",
            "taken",
            "mispredict",
        ]);
        for (w, func, mispredict) in &rows {
            let taken = func.taken_branches as f64 / func.cond_branches.max(1) as f64;
            csv.row([
                w.name().to_string(),
                func.instructions.to_string(),
                func.cond_branches.to_string(),
                format!("{taken:.4}"),
                format!("{mispredict:.4}"),
            ]);
        }
        Rendered::text(out)
            .with_artifact("table1.csv", csv.to_csv())
            .with_artifact("table1.txt", csv.render())
    }
}

// ---------------------------------------------------------------------
// Fig. 8
// ---------------------------------------------------------------------

/// Fig. 8 — baseline IPC of all six configurations.
pub struct Fig8Exp;

impl Experiment for Fig8Exp {
    fn name(&self) -> &'static str {
        "fig8"
    }
    fn description(&self) -> &'static str {
        "Fig. 8 — baseline IPC of all six configurations"
    }
    fn grid(&self) -> Vec<SweepCell> {
        matrix_grid(&baseline_configs())
    }
    fn render(&self, results: &[CellResult]) -> Rendered {
        let data = fig8_from(results);
        let mut out = String::new();

        let mut t = Table::new(
            std::iter::once("benchmark".to_string())
                .chain(CONFIG_ORDER.iter().map(|c| c.label().to_string())),
        );
        for (wi, w) in Workload::ALL.iter().enumerate() {
            t.row(
                std::iter::once(w.name().to_string()).chain(
                    CONFIG_ORDER
                        .iter()
                        .map(|&c| format!("{:.3}", data.ipc(wi, c))),
                ),
            );
        }
        t.row(
            std::iter::once("hmean".to_string()).chain(
                CONFIG_ORDER
                    .iter()
                    .map(|&c| format!("{:.3}", data.hmean(c))),
            ),
        );
        let _ = writeln!(
            out,
            "Fig. 8 — baseline IPC (columns are the paper's legend)"
        );
        let _ = writeln!(out, "{t}");

        let pct = |a: Config, b: Config| speedup_pct(data.speedup(a, b), 1.0);
        let _ = writeln!(out, "derived (paper reference in parentheses):");
        let _ = writeln!(
            out,
            "  oracle over monopath:       {:+.1}%  (+94%)",
            pct(Config::Oracle, Config::Monopath)
        );
        let _ = writeln!(
            out,
            "  SEE/oracle over monopath:   {:+.1}%  (+48%)",
            pct(Config::SeeOracle, Config::Monopath)
        );
        let _ = writeln!(
            out,
            "  SEE/JRS over monopath:      {:+.1}%  (+14%)",
            pct(Config::SeeJrs, Config::Monopath)
        );
        let _ = writeln!(
            out,
            "  dual/JRS over monopath:     {:+.1}%",
            pct(Config::DualJrs, Config::Monopath)
        );
        let _ = writeln!(
            out,
            "  dual/oracle over monopath:  {:+.1}%",
            pct(Config::DualOracle, Config::Monopath)
        );
        let see = config_index(Config::SeeJrs);
        let mono = config_index(Config::Monopath);
        for (wi, w) in Workload::ALL.iter().enumerate() {
            let s = speedup_pct(data.cells[wi][see].ipc(), data.cells[wi][mono].ipc());
            let _ = writeln!(out, "  SEE/JRS on {:<9} {:+.1}%", format!("{w}:"), s);
        }

        let mut csv = Table::new(
            std::iter::once("benchmark".to_string())
                .chain(CONFIG_ORDER.iter().map(|c| c.label().to_string())),
        );
        for (wi, w) in Workload::ALL.iter().enumerate() {
            csv.row(
                std::iter::once(w.name().to_string()).chain(
                    CONFIG_ORDER
                        .iter()
                        .map(|&c| format!("{:.4}", data.ipc(wi, c))),
                ),
            );
        }
        csv.row(
            std::iter::once("hmean".to_string()).chain(
                CONFIG_ORDER
                    .iter()
                    .map(|&c| format!("{:.4}", data.hmean(c))),
            ),
        );
        Rendered::text(out)
            .with_artifact("fig8.csv", csv.to_csv())
            .with_artifact("fig8.txt", csv.render())
    }
}

// ---------------------------------------------------------------------
// §5.1 / §5.2 (same grid as Fig. 8 — the cache makes reruns free)
// ---------------------------------------------------------------------

/// §5.1 — fetch ratios, useless instructions, PVN.
pub struct Sec51Exp;

impl Experiment for Sec51Exp {
    fn name(&self) -> &'static str {
        "sec51"
    }
    fn description(&self) -> &'static str {
        "§5.1 — fetch ratios, useless instructions, JRS PVN (shares the Fig. 8 grid)"
    }
    fn grid(&self) -> Vec<SweepCell> {
        matrix_grid(&baseline_configs())
    }
    fn render(&self, results: &[CellResult]) -> Rendered {
        let data = fig8_from(results);
        let rows = experiments::sec51(&data);
        let mut out = String::new();

        let mut t = Table::new([
            "benchmark",
            "fetch/commit (mono)",
            "JRS PVN %",
            "useless Δ%",
            "SEE speedup %",
        ]);
        for r in &rows {
            t.row([
                r.workload.name().to_string(),
                format!("{:.2}", r.mono_fetch_ratio),
                format!("{:.1}", 100.0 * r.pvn),
                format!("{:+.1}", 100.0 * r.useless_delta),
                format!("{:+.1}", 100.0 * r.see_speedup),
            ]);
        }
        let mean_ratio: f64 =
            rows.iter().map(|r| r.mono_fetch_ratio).sum::<f64>() / rows.len() as f64;
        let _ = writeln!(
            out,
            "§5.1 analysis (paper: mean fetch/commit 1.86; PVN >40% except m88ksim ~16%)"
        );
        let _ = writeln!(out, "{t}");
        let _ = writeln!(
            out,
            "mean monopath fetch/commit ratio: {mean_ratio:.2}  (paper: 1.86)"
        );

        let mut csv = Table::new([
            "benchmark",
            "fetch_ratio",
            "pvn",
            "useless_delta",
            "see_speedup",
        ]);
        for r in &rows {
            csv.row([
                r.workload.name().to_string(),
                format!("{:.4}", r.mono_fetch_ratio),
                format!("{:.4}", r.pvn),
                format!("{:.4}", r.useless_delta),
                format!("{:.4}", r.see_speedup),
            ]);
        }
        Rendered::text(out).with_artifact("sec51.csv", csv.to_csv())
    }
}

/// §5.2 — dual-path fractions and path utilization.
pub struct Sec52Exp;

impl Experiment for Sec52Exp {
    fn name(&self) -> &'static str {
        "sec52"
    }
    fn description(&self) -> &'static str {
        "§5.2 — dual-path fractions, path utilization (shares the Fig. 8 grid)"
    }
    fn grid(&self) -> Vec<SweepCell> {
        matrix_grid(&baseline_configs())
    }
    fn render(&self, results: &[CellResult]) -> Rendered {
        let data = fig8_from(results);
        let s = experiments::sec52(&data);
        let mut out = String::new();

        let _ = writeln!(
            out,
            "§5.2 dual-path execution (paper references in parentheses)"
        );
        let _ = writeln!(
            out,
            "  oracle dual-path fraction of oracle SEE gain: {:5.1}%  (58%)",
            100.0 * s.oracle_dual_fraction
        );
        let _ = writeln!(
            out,
            "  JRS dual-path fraction of JRS SEE gain:       {:5.1}%  (66%)",
            100.0 * s.jrs_dual_fraction
        );
        let _ = writeln!(
            out,
            "  mean active paths under SEE/JRS:              {:5.2}   (2.9)",
            s.mean_paths_see
        );
        let _ = writeln!(
            out,
            "  cycles with <= 3 live paths under SEE/JRS:    {:5.1}%  (75%)",
            100.0 * s.paths_le3_see
        );
        let _ = writeln!(out);

        let see = config_index(Config::SeeJrs);
        let mut t = Table::new(["benchmark", "mean paths", "<=3 paths %", "max paths"]);
        for (wi, w) in Workload::ALL.iter().enumerate() {
            let st = &data.cells[wi][see];
            t.row([
                w.name().to_string(),
                format!("{:.2}", st.mean_active_paths()),
                format!("{:.1}", 100.0 * st.paths_at_most(3)),
                st.max_live_paths.to_string(),
            ]);
        }
        let _ = writeln!(out, "per-benchmark path utilization under SEE/JRS:");
        let _ = writeln!(out, "{t}");

        let mut csv = String::new();
        let _ = writeln!(csv, "oracle_dual_fraction,{:.4}", s.oracle_dual_fraction);
        let _ = writeln!(csv, "jrs_dual_fraction,{:.4}", s.jrs_dual_fraction);
        let _ = writeln!(csv, "mean_paths_see,{:.4}", s.mean_paths_see);
        let _ = writeln!(csv, "paths_le3_see,{:.4}", s.paths_le3_see);

        // Path histogram of the SEE runs — `run_all`'s bonus artifact.
        let mut hist = Table::new(["benchmark", "paths", "cycles"]);
        for (wi, w) in Workload::ALL.iter().enumerate() {
            for (k, c) in data.cells[wi][see].path_cycles.iter().enumerate() {
                if *c > 0 {
                    hist.row([w.name().to_string(), k.to_string(), c.to_string()]);
                }
            }
        }
        Rendered::text(out)
            .with_artifact("sec52.csv", csv)
            .with_artifact("path_histogram.csv", hist.to_csv())
    }
}

// ---------------------------------------------------------------------
// Figs. 9–12
// ---------------------------------------------------------------------

/// Fig. 9 — IPC vs. branch predictor size.
pub struct Fig9Exp;

impl Experiment for Fig9Exp {
    fn name(&self) -> &'static str {
        "fig9"
    }
    fn description(&self) -> &'static str {
        "Fig. 9 — IPC vs. predictor size (equal-area comparison)"
    }
    fn grid(&self) -> Vec<SweepCell> {
        let xs: Vec<u64> = FIG9_BITS.iter().map(|&b| b as u64).collect();
        sweep_grid(&xs, &|c, bits| fig9_config(c, bits as u32))
    }
    fn render(&self, results: &[CellResult]) -> Rendered {
        let xs: Vec<u64> = FIG9_BITS.iter().map(|&b| b as u64).collect();
        let mut points = sweep_points_from(results, &xs);
        for p in &mut points {
            p.state_bytes = fig9_state_bytes(p.x as u32);
        }
        let mut out = String::new();

        let mut t = Table::new(
            ["hist bits", "state kB", "mono mispred %"]
                .into_iter()
                .map(String::from)
                .chain(SWEEP_SERIES.iter().map(|c| c.label().to_string())),
        );
        for p in &points {
            t.row(
                [
                    p.x.to_string(),
                    format!("{:.2}", p.state_bytes as f64 / 1024.0),
                    format!("{:.1}", 100.0 * p.mispredict_rate),
                ]
                .into_iter()
                .chain(p.hmean_ipc.iter().map(|v| format!("{v:.3}"))),
            );
        }
        let _ = writeln!(
            out,
            "Fig. 9 — IPC vs. predictor size (harmonic mean over all benchmarks)"
        );
        let _ = writeln!(out, "{t}");
        let _ = writeln!(out, "{}", sweep_chart(&points));
        let _ = writeln!(out, "SEE/JRS gain over monopath per point:");
        for p in &points {
            let _ = writeln!(
                out,
                "  {:>2} bits: {:+.3} IPC ({:+.1}%)",
                p.x,
                p.hmean_ipc[3] - p.hmean_ipc[1],
                100.0 * (p.hmean_ipc[3] / p.hmean_ipc[1] - 1.0)
            );
        }
        Rendered::text(out).with_artifact("fig9.csv", sweep_csv(&points, "history_bits"))
    }
}

/// Fig. 10 — IPC vs. instruction window size.
pub struct Fig10Exp;

impl Experiment for Fig10Exp {
    fn name(&self) -> &'static str {
        "fig10"
    }
    fn description(&self) -> &'static str {
        "Fig. 10 — IPC vs. instruction window size"
    }
    fn grid(&self) -> Vec<SweepCell> {
        let xs: Vec<u64> = FIG10_WINDOWS.iter().map(|&w| w as u64).collect();
        let mut cells = sweep_grid(&xs, &|c, w| fig10_config(c, w as usize));
        // §5.3.2's saturation argument needs one extra matrix row: the
        // mean occupancy of a huge window under gshare/monopath.
        cells.extend(matrix_grid(std::slice::from_ref(&fig10_config(
            Config::Monopath,
            1024,
        ))));
        cells
    }
    fn render(&self, results: &[CellResult]) -> Rendered {
        let xs: Vec<u64> = FIG10_WINDOWS.iter().map(|&w| w as u64).collect();
        let sweep_cells = xs.len() * SWEEP_SERIES.len() * W;
        let points = sweep_points_from(&results[..sweep_cells], &xs);
        let occupancy = &results[sweep_cells..];
        let mut out = String::new();

        let _ = writeln!(
            out,
            "Fig. 10 — IPC vs. instruction window size (harmonic mean)"
        );
        let _ = writeln!(out, "{}", sweep_stdout_table(&points, "window"));
        let _ = writeln!(out, "{}", sweep_chart(&points));
        let _ = writeln!(out, "SEE/JRS gain over monopath per point:");
        for p in &points {
            let _ = writeln!(
                out,
                "  {:>4} entries: {:+.1}%",
                p.x,
                100.0 * (p.hmean_ipc[3] / p.hmean_ipc[1] - 1.0)
            );
        }
        let occ: f64 = occupancy
            .iter()
            .map(|r| r.stats.mean_window_occupancy())
            .sum::<f64>()
            / occupancy.len() as f64;
        let _ = writeln!(
            out,
            "\nmean occupancy of a 1024-entry window under gshare/monopath: \
             {occ:.0} entries (paper: ≈145 — the window saturates long before 1024)"
        );
        Rendered::text(out).with_artifact("fig10.csv", sweep_csv(&points, "window"))
    }
}

/// Fig. 11 — IPC vs. functional unit configuration.
pub struct Fig11Exp;

impl Experiment for Fig11Exp {
    fn name(&self) -> &'static str {
        "fig11"
    }
    fn description(&self) -> &'static str {
        "Fig. 11 — IPC vs. functional units of each type"
    }
    fn grid(&self) -> Vec<SweepCell> {
        let xs: Vec<u64> = FIG11_FUS.iter().map(|&n| n as u64).collect();
        sweep_grid(&xs, &|c, n| fig11_config(c, n as usize))
    }
    fn render(&self, results: &[CellResult]) -> Rendered {
        let xs: Vec<u64> = FIG11_FUS.iter().map(|&n| n as u64).collect();
        let points = sweep_points_from(results, &xs);
        let mut out = String::new();

        let _ = writeln!(
            out,
            "Fig. 11 — IPC vs. functional units of each type (harmonic mean)"
        );
        let _ = writeln!(out, "{}", sweep_stdout_table(&points, "FUs/type"));
        let _ = writeln!(out, "{}", sweep_chart(&points));
        let _ = writeln!(out, "SEE/JRS gain over monopath per point:");
        for p in &points {
            let _ = writeln!(
                out,
                "  {} of each type: {:+.1}%",
                p.x,
                100.0 * (p.hmean_ipc[3] / p.hmean_ipc[1] - 1.0)
            );
        }
        Rendered::text(out).with_artifact("fig11.csv", sweep_csv(&points, "fus_per_type"))
    }
}

/// Fig. 12 — IPC vs. pipeline depth.
pub struct Fig12Exp;

impl Experiment for Fig12Exp {
    fn name(&self) -> &'static str {
        "fig12"
    }
    fn description(&self) -> &'static str {
        "Fig. 12 — IPC vs. pipeline depth"
    }
    fn grid(&self) -> Vec<SweepCell> {
        let xs: Vec<u64> = FIG12_DEPTHS.iter().map(|&d| d as u64).collect();
        sweep_grid(&xs, &|c, d| fig12_config(c, d as usize))
    }
    fn render(&self, results: &[CellResult]) -> Rendered {
        let xs: Vec<u64> = FIG12_DEPTHS.iter().map(|&d| d as u64).collect();
        let points = sweep_points_from(results, &xs);
        let mut out = String::new();

        let _ = writeln!(out, "Fig. 12 — IPC vs. pipeline depth (harmonic mean)");
        let _ = writeln!(out, "{}", sweep_stdout_table(&points, "stages"));
        let _ = writeln!(out, "{}", sweep_chart(&points));
        let _ = writeln!(out, "SEE/JRS gain over monopath per depth:");
        for p in &points {
            let _ = writeln!(
                out,
                "  {:>2} stages: {:+.3} IPC ({:+.1}%)",
                p.x,
                p.hmean_ipc[3] - p.hmean_ipc[1],
                100.0 * (p.hmean_ipc[3] / p.hmean_ipc[1] - 1.0)
            );
        }
        let mono8 = points.iter().find(|p| p.x == 8).map(|p| p.hmean_ipc[1]);
        if let Some(mono8) = mono8 {
            let _ = writeln!(
                out,
                "SEE at extended depths vs 8-stage monopath (paper: +14%/+11%/+7%):"
            );
            for d in [8, 9, 10] {
                if let Some(p) = points.iter().find(|p| p.x == d) {
                    let _ = writeln!(
                        out,
                        "  SEE {}-stage vs monopath 8-stage: {:+.1}%",
                        d,
                        100.0 * (p.hmean_ipc[3] / mono8 - 1.0)
                    );
                }
            }
        }
        Rendered::text(out).with_artifact("fig12.csv", sweep_csv(&points, "stages"))
    }
}

// ---------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------

fn ablation_predictors() -> Vec<(&'static str, PredictorKind)> {
    vec![
        (
            "gshare-14 (paper)",
            PredictorKind::Gshare { history_bits: 14 },
        ),
        ("bimodal-14", PredictorKind::Bimodal { index_bits: 14 }),
        (
            "two-level local 12/12",
            PredictorKind::TwoLevelLocal {
                bht_bits: 12,
                history_bits: 12,
            },
        ),
        (
            "agree 13/13",
            PredictorKind::Agree {
                bias_bits: 13,
                history_bits: 13,
            },
        ),
    ]
}

/// The five ablation studies' configuration lists, in grid order.
fn ablation_studies() -> Vec<Vec<SimConfig>> {
    let see = named_config(Config::SeeJrs, 14);
    let mono = named_config(Config::Monopath, 14);
    vec![
        // 1. Fetch policy (on SEE/JRS).
        [
            FetchPolicy::ExponentialByAge,
            FetchPolicy::OldestFirst,
            FetchPolicy::RoundRobin,
        ]
        .into_iter()
        .map(|p| see.clone().with_fetch_policy(p))
        .collect(),
        // 2. Branch resolution timing.
        vec![
            mono.clone(),
            mono.clone().with_commit_time_resolution(),
            see.clone(),
            see.clone().with_commit_time_resolution(),
        ],
        // 3. Adaptive confidence.
        vec![
            mono.clone(),
            see.clone(),
            see.clone()
                .with_confidence(ConfidenceKind::AdaptiveJrs(AdaptiveConfig::paper_baseline())),
        ],
        // 4. Direction predictors (mono + SEE per predictor).
        ablation_predictors()
            .into_iter()
            .flat_map(|(_, pk)| {
                [
                    mono.clone().with_predictor(pk),
                    see.clone().with_predictor(pk),
                ]
            })
            .collect(),
        // 5. Cache realism.
        vec![
            mono.clone(),
            mono.clone().with_dcache(CacheConfig::l1_8k()),
            see.clone(),
            see.clone().with_dcache(CacheConfig::l1_8k()),
        ],
    ]
}

/// Five extension studies of design choices the paper leaves open.
pub struct AblationsExp;

impl Experiment for AblationsExp {
    fn name(&self) -> &'static str {
        "ablations"
    }
    fn description(&self) -> &'static str {
        "five extension studies (fetch policy, resolution timing, confidence, predictors, cache)"
    }
    fn grid(&self) -> Vec<SweepCell> {
        ablation_studies()
            .iter()
            .flat_map(|configs| matrix_grid(configs))
            .collect()
    }
    fn render(&self, results: &[CellResult]) -> Rendered {
        let studies = ablation_studies();
        let mut out = String::new();
        let mut off = 0;
        let mut next = |n: usize| {
            let s = &results[off..off + n * W];
            off += n * W;
            s
        };

        // --- 1. Fetch policy ---------------------------------------------
        let s1 = next(studies[0].len());
        let means = hmeans_of(s1, 3);
        let _ = writeln!(out, "Ablation 1 — fetch bandwidth arbitration (SEE/JRS):");
        let mut t = Table::new(["policy", "hmean IPC"]);
        for (p, m) in ["exponential-by-age (paper)", "oldest-first", "round-robin"]
            .iter()
            .zip(&means)
        {
            t.row([p.to_string(), format!("{m:.3}")]);
        }
        let _ = writeln!(out, "{t}");

        // --- 2. Resolution timing ----------------------------------------
        let s2 = next(studies[1].len());
        let means = hmeans_of(s2, 4);
        let _ = writeln!(out, "Ablation 2 — branch resolution timing:");
        let mut t = Table::new(["configuration", "hmean IPC"]);
        for (name, m) in [
            "monopath, resolve at execute",
            "monopath, resolve at commit",
            "SEE/JRS, resolve at execute (PolyPath)",
            "SEE/JRS, resolve at commit",
        ]
        .iter()
        .zip(&means)
        {
            t.row([name.to_string(), format!("{m:.3}")]);
        }
        let _ = writeln!(out, "{t}");
        let _ = writeln!(
            out,
            "out-of-order resolution is worth {:+.1}% to monopath and {:+.1}% to SEE\n",
            100.0 * (means[0] / means[1] - 1.0),
            100.0 * (means[2] / means[3] - 1.0),
        );

        // --- 3. Adaptive confidence --------------------------------------
        let s3 = next(studies[2].len());
        let _ = writeln!(
            out,
            "Ablation 3 — self-monitoring confidence estimation (§5.1 lesson):"
        );
        let mut t = Table::new(["benchmark", "monopath", "SEE/JRS", "SEE/adaptive-JRS"]);
        for (wi, w) in Workload::ALL.iter().enumerate() {
            t.row([
                w.name().to_string(),
                format!("{:.3}", s3[wi * 3].stats.ipc()),
                format!("{:.3}", s3[wi * 3 + 1].stats.ipc()),
                format!("{:.3}", s3[wi * 3 + 2].stats.ipc()),
            ]);
        }
        let hm = hmeans_of(s3, 3);
        t.row([
            "hmean".to_string(),
            format!("{:.3}", hm[0]),
            format!("{:.3}", hm[1]),
            format!("{:.3}", hm[2]),
        ]);
        let _ = writeln!(out, "{t}");
        let _ = writeln!(
            out,
            "adaptive gate vs plain JRS: {:+.1}% (it should recover the losses on\n\
             low-PVN benchmarks while keeping the gains elsewhere)\n",
            100.0 * (hm[2] / hm[1] - 1.0)
        );

        // --- 4. Direction predictors --------------------------------------
        let s4 = next(studies[3].len());
        let means = hmeans_of(s4, 8);
        let _ = writeln!(
            out,
            "Ablation 4 — base direction predictor (~equal state budgets):"
        );
        let mut t = Table::new(["predictor", "monopath IPC", "SEE/JRS IPC", "SEE gain %"]);
        for (pi, (name, _)) in ablation_predictors().iter().enumerate() {
            let (m0, m1) = (means[pi * 2], means[pi * 2 + 1]);
            t.row([
                name.to_string(),
                format!("{m0:.3}"),
                format!("{m1:.3}"),
                format!("{:+.1}", 100.0 * (m1 / m0 - 1.0)),
            ]);
        }
        let _ = writeln!(out, "{t}");

        // --- 5. Cache realism ---------------------------------------------
        let s5 = next(studies[4].len());
        let m = hmeans_of(s5, 4);
        let _ = writeln!(
            out,
            "Ablation 5 — always-hit D-cache (paper) vs modeled 8 KiB L1:"
        );
        let mut t = Table::new(["configuration", "hmean IPC"]);
        for (name, v) in [
            "monopath, always-hit",
            "monopath, 8 KiB L1",
            "SEE/JRS, always-hit",
            "SEE/JRS, 8 KiB L1",
        ]
        .iter()
        .zip(&m)
        {
            t.row([name.to_string(), format!("{v:.3}")]);
        }
        let _ = writeln!(out, "{t}");
        let _ = writeln!(
            out,
            "SEE gain: {:+.1}% always-hit vs {:+.1}% with a real L1",
            100.0 * (m[2] / m[0] - 1.0),
            100.0 * (m[3] / m[1] - 1.0),
        );
        Rendered::text(out)
    }
}

// ---------------------------------------------------------------------
// Input sensitivity
// ---------------------------------------------------------------------

/// The three input data seeds the sensitivity study compares.
pub const SENSITIVITY_SEEDS: [u64; 3] = [0, 0x5eed_0001, 0x5eed_0002];

/// Fig. 8 headline across three input data sets per workload.
pub struct InputSensitivityExp;

impl Experiment for InputSensitivityExp {
    fn name(&self) -> &'static str {
        "input_sensitivity"
    }
    fn description(&self) -> &'static str {
        "SEE/JRS vs. monopath across three input data sets per workload"
    }
    fn grid(&self) -> Vec<SweepCell> {
        let mono = named_config(Config::Monopath, 14);
        let see = named_config(Config::SeeJrs, 14);
        let mut cells = Vec::new();
        for &w in &Workload::ALL {
            for &seed in &SENSITIVITY_SEEDS {
                cells.push(SweepCell::new(w, mono.clone()).with_seed(seed));
                cells.push(SweepCell::new(w, see.clone()).with_seed(seed));
            }
        }
        cells
    }
    fn render(&self, results: &[CellResult]) -> Rendered {
        let n_seeds = SENSITIVITY_SEEDS.len();
        let cell = |wi: usize, si: usize, k: usize| &results[(wi * n_seeds + si) * 2 + k].stats;
        let mut out = String::new();

        let mut t = Table::new(
            std::iter::once("benchmark".to_string()).chain(
                SENSITIVITY_SEEDS
                    .iter()
                    .map(|s| format!("gain% seed {s:#x}")),
            ),
        );
        for (wi, w) in Workload::ALL.iter().enumerate() {
            let mut cells = vec![w.name().to_string()];
            for si in 0..n_seeds {
                let gain = speedup_frac(cell(wi, si, 1).ipc(), cell(wi, si, 0).ipc());
                cells.push(format!("{:+.1}", 100.0 * gain));
            }
            t.row(cells);
        }
        let _ = writeln!(
            out,
            "SEE/JRS gain over monopath, three input sets per workload"
        );
        let _ = writeln!(out, "{t}");
        for (si, &seed) in SENSITIVITY_SEEDS.iter().enumerate() {
            let sees: Vec<f64> = (0..W).map(|wi| cell(wi, si, 1).ipc()).collect();
            let monos: Vec<f64> = (0..W).map(|wi| cell(wi, si, 0).ipc()).collect();
            let _ = writeln!(
                out,
                "seed {seed:#x}: hmean SEE {:.3} vs monopath {:.3} ({:+.1}%)",
                harmonic_mean(&sees),
                harmonic_mean(&monos),
                100.0 * (harmonic_mean(&sees) / harmonic_mean(&monos) - 1.0),
            );
        }
        Rendered::text(out)
    }
}

// ---------------------------------------------------------------------
// Calibration
// ---------------------------------------------------------------------

/// Workload calibration table (scale, density, misprediction, IPC).
pub struct CalibrateExp;

impl Experiment for CalibrateExp {
    fn name(&self) -> &'static str {
        "calibrate"
    }
    fn description(&self) -> &'static str {
        "workload calibration table (instructions/unit, branch density, IPC)"
    }
    fn grid(&self) -> Vec<SweepCell> {
        matrix_grid(std::slice::from_ref(&named_config(Config::Monopath, 14)))
    }
    fn render(&self, results: &[CellResult]) -> Rendered {
        let mut out = String::new();
        let mut t = Table::new([
            "workload",
            "scale",
            "dyn-instr",
            "instr/unit",
            "branch%",
            "mispredict%",
            "IPC",
        ]);
        for (w, r) in Workload::ALL.iter().zip(results) {
            let scale = scaled(*w);
            let func = w.characterize(scale);
            t.row([
                w.name().to_string(),
                scale.to_string(),
                func.instructions.to_string(),
                format!("{:.1}", func.instructions as f64 / scale as f64),
                format!(
                    "{:.1}",
                    100.0 * func.cond_branches as f64 / func.instructions as f64
                ),
                format!("{:.2}", 100.0 * r.stats.mispredict_rate()),
                format!("{:.3}", r.stats.ipc()),
            ]);
        }
        let _ = writeln!(out, "{t}");
        Rendered::text(out)
    }
}

// ---------------------------------------------------------------------
// FP validation (no sweep grid — drives a custom kernel directly)
// ---------------------------------------------------------------------

/// §5.1's floating-point remark on a predictable FP kernel.
pub struct FpValidationExp;

impl Experiment for FpValidationExp {
    fn name(&self) -> &'static str {
        "fp_validation"
    }
    fn description(&self) -> &'static str {
        "§5.1 FP remark — SEE on a perfectly predictable FP kernel (uncached)"
    }
    fn grid(&self) -> Vec<SweepCell> {
        // The FP kernel is not a Workload, so this experiment cannot be
        // expressed as cacheable cells; it simulates inside render.
        Vec::new()
    }
    fn render(&self, _: &[CellResult]) -> Rendered {
        let scale = ((300.0 * scale_factor()) as u64).max(4);
        let program = pp_workloads::extra::fp_kernel(scale);
        let run = |cfg: SimConfig| Simulator::new(&program, cfg).run();
        let mono = run(named_config(Config::Monopath, 14));
        let see = run(named_config(Config::SeeJrs, 14));

        let mut out = String::new();
        let _ = writeln!(
            out,
            "§5.1 FP validation — predictable dot-product kernel (scale {scale})"
        );
        let _ = writeln!(
            out,
            "  monopath: IPC {:.3}  mispredict {:.2}%  FPAdd util {:.1}%  FPMult util {:.1}%",
            mono.ipc(),
            100.0 * mono.mispredict_rate(),
            100.0 * mono.fu_fp_add.utilization(),
            100.0 * mono.fu_fp_mul.utilization(),
        );
        let _ = writeln!(
            out,
            "  SEE/JRS:  IPC {:.3}  divergences {}  ({:+.2}% vs monopath)",
            see.ipc(),
            see.divergences,
            speedup_pct(see.ipc(), mono.ipc()),
        );
        let _ = writeln!(
            out,
            "\npaper expectation: a small non-negative effect on highly\n\
             predictable code (its vortex datapoint was +4%)."
        );
        Rendered::text(out)
    }
}

// ---------------------------------------------------------------------
// Workload profiles (no sweep grid — drives the functional emulator)
// ---------------------------------------------------------------------

/// Per-workload hot-loop profiles from the functional emulator.
pub struct WorkloadProfileExp {
    /// `Some(name)`: annotated listing for one workload; `None`:
    /// summary table of all of them.
    pub target: Option<Workload>,
}

impl Experiment for WorkloadProfileExp {
    fn name(&self) -> &'static str {
        "workload_profile"
    }
    fn description(&self) -> &'static str {
        "per-workload hot-loop profiles from the functional emulator (uncached)"
    }
    fn grid(&self) -> Vec<SweepCell> {
        Vec::new()
    }
    fn render(&self, _: &[CellResult]) -> Rendered {
        let mut out = String::new();
        match self.target {
            Some(w) => {
                let scale = (w.default_scale() / 10).max(4);
                let program = w.build(scale);
                let mut emu = pp_func::Emulator::new(&program);
                let (summary, profile) = emu.run_profiled(1_000_000_000).expect("workload halts");
                let _ = writeln!(
                    out,
                    "{w} at scale {scale}: {} instructions, {} branches\n",
                    summary.instructions, summary.cond_branches
                );
                let _ = writeln!(out, "{}", profile.annotate(&program));
            }
            None => {
                let mut t = Table::new([
                    "workload",
                    "static instrs",
                    "dynamic instrs",
                    "hottest pc",
                    "share %",
                ]);
                for w in Workload::ALL {
                    let scale = (w.default_scale() / 10).max(4);
                    let program = w.build(scale);
                    let mut emu = pp_func::Emulator::new(&program);
                    let (_, profile) = emu.run_profiled(1_000_000_000).expect("halts");
                    let (hot_pc, hot_n) = profile.hottest(1)[0];
                    t.row([
                        w.name().to_string(),
                        program.len().to_string(),
                        profile.total().to_string(),
                        format!("{hot_pc} ({})", program.code[hot_pc]),
                        format!("{:.1}", 100.0 * hot_n as f64 / profile.total() as f64),
                    ]);
                }
                let _ = writeln!(
                    out,
                    "workload profiles (run with a name for the annotated listing)"
                );
                let _ = writeln!(out, "{t}");
            }
        }
        Rendered::text(out)
    }
}

// ---------------------------------------------------------------------
// CPI stall stacks (no sweep grid — needs the opt-in stall accountant)
// ---------------------------------------------------------------------

/// CPI stall stacks: every commit slot of every cycle charged to one
/// named cause, across the workload suite × three execution models.
pub struct StallStackExp;

/// The three execution models the stall stacks compare (the fuzz
/// configurations, minus checking).
const STALL_CONFIGS: [(&str, Config); 3] = [
    ("monopath", Config::Monopath),
    ("see_jrs", Config::SeeJrs),
    ("dual_jrs", Config::DualJrs),
];

impl Experiment for StallStackExp {
    fn name(&self) -> &'static str {
        "stallstack"
    }
    fn description(&self) -> &'static str {
        "CPI stall stacks — per-cycle commit-slot cause accounting across workloads × modes (uncached)"
    }
    fn grid(&self) -> Vec<SweepCell> {
        // The stall counters live outside SimStats (byte-invisible to
        // the golden snapshots), so these runs cannot be cache-served as
        // cells; the sweep happens in render with the accountant on.
        Vec::new()
    }
    fn render(&self, _: &[CellResult]) -> Rendered {
        let mut csv = pp_trace::stall_csv_header();
        let mut t = Table::new([
            "workload",
            "config",
            "cpi",
            "commit%",
            "fetch%",
            "winfull%",
            "operand%",
            "fu%",
            "sbuf%",
            "wrongpath%",
            "squash%",
        ]);
        let (mut ok, mut total) = (0usize, 0usize);
        for &w in &Workload::ALL {
            for (cname, c) in STALL_CONFIGS {
                let cfg = named_config(c, BASELINE_HISTORY_BITS);
                let width = cfg.commit_width as u64;
                let program = w.build(scaled(w));
                let mut sim = Simulator::new(&program, cfg);
                sim.enable_stall_accounting();
                let stats = sim.run();
                let st = *sim.stall_stack().expect("accounting enabled");

                // The conservation law the CI trace job greps for:
                // commits + stall charges account for every slot of
                // every cycle, and commits match SimStats exactly.
                total += 1;
                if st.total_slots() == stats.cycles * width
                    && st.commit_slots == stats.committed_instructions
                {
                    ok += 1;
                } else {
                    eprintln!(
                        "stallstack: CONSERVATION VIOLATED for {}/{cname}: \
                         {} slots charged vs {} offered",
                        w.name(),
                        st.total_slots(),
                        stats.cycles * width
                    );
                }

                csv.push_str(&pp_trace::stall_csv_row(
                    w.name(),
                    cname,
                    width,
                    &stats,
                    &st,
                ));
                let pct = |v: u64| format!("{:.1}", 100.0 * v as f64 / st.total_slots() as f64);
                t.row([
                    w.name().to_string(),
                    cname.to_string(),
                    format!(
                        "{:.3}",
                        stats.cycles as f64 / stats.committed_instructions as f64
                    ),
                    pct(st.commit_slots),
                    pct(st.fetch_starved),
                    pct(st.window_full),
                    pct(st.operand_wait),
                    pct(st.fu_structural),
                    pct(st.store_buffer),
                    pct(st.wrong_path),
                    pct(st.squash_recovery),
                ]);
            }
        }

        // One representative causal timeline rides along: compress under
        // SEE/JRS with the span collector attached (reduced scale; the
        // event cap bounds the artifact anyway).
        let w = Workload::Compress;
        let program = w.build((scaled(w) / 10).max(4));
        let mut sim = Simulator::new(
            &program,
            named_config(Config::SeeJrs, BASELINE_HISTORY_BITS),
        );
        sim.set_observer(Box::new(pp_trace::SpanCollector::new()));
        sim.run();
        let spans = pp_trace::SpanCollector::from_box(sim.take_observer().expect("attached"))
            .expect("downcasts");
        let trace = spans.to_chrome_trace(pp_telemetry::DEFAULT_MAX_TRACE_EVENTS);
        let mut trace_json = Vec::new();
        pp_telemetry::write_chrome_trace(&mut trace_json, &trace)
            .expect("a simulated run always produces trace events");

        let mut out = String::new();
        let _ = writeln!(
            out,
            "CPI stall stacks — % of cycles×commit_width slots by cause"
        );
        let _ = writeln!(out, "{t}");
        let _ = writeln!(out, "stall-cause conservation: {ok}/{total} cells OK");
        Rendered::text(out)
            .with_artifact("stallstack.csv", csv)
            .with_artifact(
                "stallstack.trace.json",
                String::from_utf8(trace_json).expect("exporter emits UTF-8"),
            )
    }
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

/// Every registered experiment, in `run all` order.
pub fn registry() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(Table1Exp),
        Box::new(Fig8Exp),
        Box::new(Sec51Exp),
        Box::new(Sec52Exp),
        Box::new(Fig9Exp),
        Box::new(Fig10Exp),
        Box::new(Fig11Exp),
        Box::new(Fig12Exp),
        Box::new(AblationsExp),
        Box::new(InputSensitivityExp),
        Box::new(CalibrateExp),
        Box::new(FpValidationExp),
        Box::new(StallStackExp),
        Box::new(WorkloadProfileExp { target: None }),
    ]
}

/// Look up an experiment by registry name.
pub fn find(name: &str) -> Option<Box<dyn Experiment>> {
    registry().into_iter().find(|e| e.name() == name)
}

/// The registered names, for `sweep list` and error messages.
pub fn names() -> Vec<&'static str> {
    registry().iter().map(|e| e.name()).collect()
}

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

/// Build a [`SweepEngine`] from the unified CLI options.
pub fn engine_from(opts: &SweepOpts) -> SweepEngine {
    let mut engine = SweepEngine::new()
        .with_workers(opts.workers)
        .with_progress(!opts.quiet)
        .with_max_cells(opts.max_cells);
    if let Some(dir) = &opts.cache_dir {
        engine = engine.with_cache(dir);
    }
    engine
}

/// Experiments whose `--telemetry-out` additionally triggers the
/// instrumented SEE/JRS re-run (artifact prefix per experiment).
fn instrumented_prefix(name: &str) -> Option<&'static str> {
    match name {
        "fig8" => Some("fig8_see_jrs"),
        _ => None,
    }
}

fn telemetry_pass(prefix: &'static str, opts: &TelemetryOpts) -> Result<(), String> {
    println!("\ntelemetry pass (SEE/JRS, instrumented re-run):");
    let cfg = named_config(Config::SeeJrs, BASELINE_HISTORY_BITS);
    for w in Workload::ALL {
        run_workload_telemetered(w, &cfg, opts, prefix).map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Run one experiment through the engine: print its report, write its
/// artifacts, export telemetry. `Err` carries a runtime-failure message
/// (cells failed, artifacts unwritable) for the caller to report.
pub fn run_one(exp: &dyn Experiment, opts: &SweepOpts) -> Result<(), String> {
    match run_experiment(exp, &engine_from(opts)) {
        ExperimentOutcome::Rendered(rendered, report) => {
            print!("{}", rendered.stdout);
            if let Some(dir) = &opts.out_dir {
                let written = rendered.write_artifacts(dir).map_err(|e| {
                    format!(
                        "writing artifacts for {} into {}: {e}",
                        exp.name(),
                        dir.display()
                    )
                })?;
                for p in written {
                    println!("wrote {}", p.display());
                }
            }
            if !opts.quiet {
                eprintln!("[sweep] {}: {}", exp.name(), report.summary());
            }
            if let Some(dir) = &opts.telemetry.out_dir {
                let path = dir.join(format!("sweep_{}.metrics.jsonl", exp.name()));
                std::fs::create_dir_all(dir)
                    .and_then(|()| {
                        let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
                        pp_telemetry::write_registry_jsonl(&mut f, &report.registry).map(|_| ())
                    })
                    .map_err(|e| format!("writing {}: {e}", path.display()))?;
                println!("wrote {}", path.display());
                if let Some(prefix) = instrumented_prefix(exp.name()) {
                    telemetry_pass(prefix, &opts.telemetry)?;
                }
            }
            Ok(())
        }
        ExperimentOutcome::Incomplete(errors, report) => {
            for e in &errors {
                eprintln!("error: {e}");
            }
            Err(format!(
                "{}: incomplete sweep — {}",
                exp.name(),
                report.summary()
            ))
        }
    }
}

/// Run the experiment registered as `name`.
pub fn run_by_name(name: &str, opts: &SweepOpts) -> Result<(), String> {
    let exp = find(name)
        .ok_or_else(|| format!("unknown experiment `{name}`; known: {}", names().join(", ")))?;
    run_one(exp.as_ref(), opts)
}

/// Run every registered experiment, continuing past failures; `Err`
/// names the experiments that failed.
pub fn run_all(opts: &SweepOpts) -> Result<(), String> {
    let mut failed = Vec::new();
    for exp in registry() {
        println!("== {} — {}", exp.name(), exp.description());
        if let Err(msg) = run_one(exp.as_ref(), opts) {
            eprintln!("error: {msg}");
            failed.push(exp.name());
        }
        println!();
    }
    if failed.is_empty() {
        println!("done.");
        Ok(())
    } else {
        Err(format!(
            "{} experiment(s) failed: {}",
            failed.len(),
            failed.join(", ")
        ))
    }
}

/// `main` of a legacy single-experiment binary: parse the unified
/// flags, run the named experiment, exit 0/1/2.
pub fn shim_main(name: &str) -> ! {
    let (opts, positional) = SweepOpts::from_env();
    if let Some(extra) = positional.first() {
        crate::cli::usage_error(format_args!("unexpected argument {extra:?}"));
    }
    match run_by_name(name, &opts) {
        Ok(()) => std::process::exit(0),
        Err(msg) => crate::cli::fail(msg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_findable() {
        let names = names();
        let set: std::collections::HashSet<&str> = names.iter().copied().collect();
        assert_eq!(set.len(), names.len());
        for n in &names {
            assert_eq!(find(n).unwrap().name(), *n);
        }
        assert!(find("frobnicate").is_none());
    }

    #[test]
    fn grid_shapes() {
        assert_eq!(Table1Exp.grid().len(), W);
        assert_eq!(Fig8Exp.grid().len(), W * CONFIG_ORDER.len());
        // fig8/sec51/sec52 share their cells (same fingerprints → the
        // cache runs them once).
        let a = Fig8Exp.grid();
        let b = Sec51Exp.grid();
        assert_eq!(
            a.iter()
                .map(pp_sweep::SweepCell::fingerprint)
                .collect::<Vec<_>>(),
            b.iter()
                .map(pp_sweep::SweepCell::fingerprint)
                .collect::<Vec<_>>()
        );
        assert_eq!(
            Fig9Exp.grid().len(),
            FIG9_BITS.len() * SWEEP_SERIES.len() * W
        );
        // Fig. 10 carries the extra occupancy row.
        assert_eq!(
            Fig10Exp.grid().len(),
            FIG10_WINDOWS.len() * SWEEP_SERIES.len() * W + W
        );
        let per_study: usize = ablation_studies().iter().map(|s| s.len() * W).sum();
        assert_eq!(AblationsExp.grid().len(), per_study);
        assert_eq!(
            InputSensitivityExp.grid().len(),
            W * SENSITIVITY_SEEDS.len() * 2
        );
        assert!(FpValidationExp.grid().is_empty());
        assert!(StallStackExp.grid().is_empty());
    }

    #[test]
    fn input_sensitivity_cells_carry_seeds() {
        let grid = InputSensitivityExp.grid();
        assert_eq!(grid[0].seed, Some(0));
        assert_eq!(grid[2].seed, Some(0x5eed_0001));
        // mono/see pairs share the seed.
        assert_eq!(grid[0].seed, grid[1].seed);
    }
}
