//! Sweep runner: simulate workloads × configurations, in parallel.

use pp_core::{SimConfig, SimStats, Simulator};
use pp_workloads::Workload;

/// One cell of a sweep matrix.
#[derive(Debug, Clone)]
pub struct MatrixResult {
    /// The workload simulated.
    pub workload: Workload,
    /// Index of the configuration in the caller's configuration list.
    pub config_index: usize,
    /// Collected statistics.
    pub stats: SimStats,
}

/// The workload-scale multiplier from the `PP_SCALE` environment variable
/// (default 1.0). Benches set e.g. `PP_SCALE=0.05` for quick runs.
pub fn scale_factor() -> f64 {
    std::env::var("PP_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|v: &f64| *v > 0.0)
        .unwrap_or(1.0)
}

/// The scale for `workload` under the current `PP_SCALE`.
pub fn scaled(workload: Workload) -> u64 {
    ((workload.default_scale() as f64 * scale_factor()) as u64).max(1)
}

/// Worker thread count: one per available core, capped at the job count.
pub fn parallelism(jobs: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(jobs)
        .max(1)
}

/// Simulate one workload under one configuration at the current scale.
pub fn run_workload(workload: Workload, cfg: &SimConfig) -> SimStats {
    let program = workload.build(scaled(workload));
    let stats = Simulator::new(&program, cfg.clone()).run();
    assert!(
        !stats.hit_cycle_limit,
        "{workload} hit the cycle limit under {cfg:?}"
    );
    stats
}

/// Simulate every workload under every configuration, fanning jobs out
/// across threads. Results are returned in deterministic
/// (workload-major, config-minor) order regardless of thread scheduling.
pub fn run_matrix(workloads: &[Workload], configs: &[SimConfig]) -> Vec<MatrixResult> {
    let jobs: Vec<(usize, Workload, usize)> = workloads
        .iter()
        .enumerate()
        .flat_map(|(wi, &w)| {
            configs
                .iter()
                .enumerate()
                .map(move |(ci, _)| (wi, w, ci))
        })
        .collect();

    let n_workers = parallelism(jobs.len());
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut results: Vec<Option<MatrixResult>> = (0..jobs.len()).map(|_| None).collect();
    let slots: Vec<std::sync::Mutex<&mut Option<MatrixResult>>> =
        results.iter_mut().map(std::sync::Mutex::new).collect();

    std::thread::scope(|scope| {
        for _ in 0..n_workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(&(_, w, ci)) = jobs.get(i) else { break };
                let stats = run_workload(w, &configs[ci]);
                **slots[i].lock().expect("slot lock") = Some(MatrixResult {
                    workload: w,
                    config_index: ci,
                    stats,
                });
            });
        }
    });
    drop(slots);
    results
        .into_iter()
        .map(|r| r.expect("every job ran"))
        .collect()
}

/// Harmonic mean — the paper's summary statistic for IPC across
/// benchmarks.
///
/// # Panics
/// Panics if `values` is empty or contains a non-positive value.
pub fn harmonic_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "harmonic mean of nothing");
    assert!(
        values.iter().all(|v| *v > 0.0),
        "harmonic mean requires positive values"
    );
    values.len() as f64 / values.iter().map(|v| 1.0 / v).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::{named_config, Config};

    #[test]
    fn harmonic_mean_basics() {
        assert!((harmonic_mean(&[2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((harmonic_mean(&[1.0, 2.0]) - 4.0 / 3.0).abs() < 1e-12);
        // Harmonic ≤ arithmetic.
        assert!(harmonic_mean(&[1.0, 4.0]) < 2.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn harmonic_mean_rejects_zero() {
        harmonic_mean(&[1.0, 0.0]);
    }

    #[test]
    fn matrix_order_is_deterministic() {
        std::env::set_var("PP_SCALE", "0.01");
        let workloads = [Workload::Vortex, Workload::Compress];
        let configs = [
            named_config(Config::Monopath, 10),
            named_config(Config::SeeJrs, 10),
        ];
        let r = run_matrix(&workloads, &configs);
        assert_eq!(r.len(), 4);
        assert_eq!(r[0].workload, Workload::Vortex);
        assert_eq!(r[0].config_index, 0);
        assert_eq!(r[1].config_index, 1);
        assert_eq!(r[2].workload, Workload::Compress);
        for cell in &r {
            assert!(cell.stats.committed_instructions > 0);
        }
    }

    #[test]
    fn parallelism_bounds() {
        assert_eq!(parallelism(0), 1);
        assert!(parallelism(4) <= 4);
        assert!(parallelism(1000) >= 1);
    }
}
