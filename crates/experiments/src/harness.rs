//! Sweep runner: simulate workloads × configurations, in parallel —
//! plus the shared derived-metric helpers and the `--telemetry-*`
//! command-line plumbing every binary uses.

use std::path::PathBuf;

use pp_core::{SimConfig, SimStats, Simulator};
use pp_telemetry::{TelemetryArtifacts, TelemetryConfig, TelemetryObserver};
use pp_workloads::Workload;

/// One cell of a sweep matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixResult {
    /// The workload simulated.
    pub workload: Workload,
    /// Index of the configuration in the caller's configuration list.
    pub config_index: usize,
    /// Collected statistics.
    pub stats: SimStats,
}

// The scale plumbing lives in pp-sweep now (the cache fingerprints need
// it); re-exported here so existing callers keep compiling.
pub use pp_sweep::{scale_factor, scaled};

/// Worker thread count: one per available core, capped at the job count.
pub fn parallelism(jobs: usize) -> usize {
    std::thread::available_parallelism()
        .map_or(1, std::num::NonZero::get)
        .min(jobs)
        .max(1)
}

/// Simulate one workload under one configuration at the current scale.
pub fn run_workload(workload: Workload, cfg: &SimConfig) -> SimStats {
    let program = workload.build(scaled(workload));
    let stats = Simulator::new(&program, cfg.clone()).run();
    assert!(
        !stats.hit_cycle_limit,
        "{workload} hit the cycle limit under {cfg:?}"
    );
    stats
}

/// Simulate every workload under every configuration, fanning jobs out
/// across threads. Results are returned in deterministic
/// (workload-major, config-minor) order regardless of thread scheduling.
pub fn run_matrix(workloads: &[Workload], configs: &[SimConfig]) -> Vec<MatrixResult> {
    let n = parallelism(workloads.len() * configs.len());
    run_matrix_with_workers(workloads, configs, n)
}

/// [`run_matrix`] with an explicit worker-thread count. Each simulation
/// is self-contained, so the results — including their order — are
/// identical for every `workers >= 1`; the determinism suite locks this
/// in.
///
/// Jobs fan out through [`pp_sweep::run_stealing`], which isolates
/// per-cell panics and retries each failing cell once. A cell that
/// still fails panics here with a message naming the (workload, config)
/// pair — not whatever bare message the worker thread died with.
///
/// # Panics
/// Panics if any (workload, config) cell fails after a retry, naming
/// that cell.
pub fn run_matrix_with_workers(
    workloads: &[Workload],
    configs: &[SimConfig],
    workers: usize,
) -> Vec<MatrixResult> {
    let jobs: Vec<(Workload, usize)> = workloads
        .iter()
        .flat_map(|&w| (0..configs.len()).map(move |ci| (w, ci)))
        .collect();

    let outcomes = pp_sweep::run_stealing(jobs.len(), workers, |i| {
        let (w, ci) = jobs[i];
        run_workload(w, &configs[ci])
    });
    jobs.iter()
        .zip(outcomes)
        .map(|(&(w, ci), outcome)| match outcome {
            Ok(stats) => MatrixResult {
                workload: w,
                config_index: ci,
                stats,
            },
            Err(failure) => panic!(
                "sweep cell (workload {w}, config {ci}) failed after {} attempts: {}",
                failure.attempts, failure.message
            ),
        })
        .collect()
}

/// Harmonic mean — the paper's summary statistic for IPC across
/// benchmarks.
///
/// # Panics
/// Panics if `values` is empty or contains a non-positive value.
pub fn harmonic_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "harmonic mean of nothing");
    assert!(
        values.iter().all(|v| *v > 0.0),
        "harmonic mean requires positive values"
    );
    values.len() as f64 / values.iter().map(|v| 1.0 / v).sum::<f64>()
}

/// Geometric mean — the summary statistic for rates (misprediction,
/// miss rates) across benchmarks.
///
/// # Panics
/// Panics if `values` is empty or contains a non-positive value (clamp
/// zero rates before calling, e.g. with `.max(1e-6)`).
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of nothing");
    assert!(
        values.iter().all(|v| *v > 0.0),
        "geometric mean requires positive values"
    );
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Relative improvement of `new` over `old` as a fraction
/// (`0.14` = 14% faster; negative = slowdown).
pub fn speedup_frac(new: f64, old: f64) -> f64 {
    new / old - 1.0
}

/// Relative improvement of `new` over `old` in percent — the form the
/// paper quotes ("SEE/JRS ≈ +14%").
pub fn speedup_pct(new: f64, old: f64) -> f64 {
    100.0 * speedup_frac(new, old)
}

// ---------------------------------------------------------------------
// Telemetry plumbing
// ---------------------------------------------------------------------

/// Telemetry options shared by the experiment binaries, parsed from
/// `--telemetry-out <dir>` and `--telemetry-sample-every <n>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryOpts {
    /// Artifact directory; telemetry is enabled iff this is set.
    pub out_dir: Option<PathBuf>,
    /// Machine-state sampling interval in cycles.
    pub sample_every: u64,
}

impl Default for TelemetryOpts {
    fn default() -> Self {
        TelemetryOpts {
            out_dir: None,
            sample_every: 64,
        }
    }
}

impl TelemetryOpts {
    /// Parse telemetry flags out of `args`, returning the options and
    /// the arguments that were not telemetry-related (in order).
    ///
    /// Accepted forms: `--telemetry-out DIR`, `--telemetry-out=DIR`,
    /// `--telemetry-sample-every N`, `--telemetry-sample-every=N`.
    ///
    /// `Err` carries an actionable usage message (flag missing its value
    /// or a non-numeric interval).
    pub fn try_parse(
        args: impl IntoIterator<Item = String>,
    ) -> Result<(Self, Vec<String>), String> {
        let mut opts = TelemetryOpts::default();
        let mut rest = Vec::new();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            if let Some(v) = a.strip_prefix("--telemetry-out=") {
                opts.out_dir = Some(PathBuf::from(v));
            } else if a == "--telemetry-out" {
                let v = it
                    .next()
                    .ok_or("--telemetry-out needs a directory".to_string())?;
                opts.out_dir = Some(PathBuf::from(v));
            } else if let Some(v) = a.strip_prefix("--telemetry-sample-every=") {
                opts.sample_every =
                    crate::cli::try_parse_value("--telemetry-sample-every", v, "a cycle count")?;
            } else if a == "--telemetry-sample-every" {
                let v = it
                    .next()
                    .ok_or("--telemetry-sample-every needs a cycle count".to_string())?;
                opts.sample_every =
                    crate::cli::try_parse_value("--telemetry-sample-every", &v, "a cycle count")?;
            } else {
                rest.push(a);
            }
        }
        Ok((opts, rest))
    }

    /// [`Self::try_parse`], exiting with a usage error (status 2) on
    /// malformed input instead of returning it.
    pub fn parse(args: impl IntoIterator<Item = String>) -> (Self, Vec<String>) {
        Self::try_parse(args).unwrap_or_else(|m| crate::cli::usage_error(m))
    }

    /// Parse from the process arguments (skipping `argv[0]`).
    pub fn from_env() -> (Self, Vec<String>) {
        Self::parse(std::env::args().skip(1))
    }

    /// Whether an output directory was requested.
    pub fn enabled(&self) -> bool {
        self.out_dir.is_some()
    }
}

/// Failure to write a workload's telemetry artifacts: the workload, the
/// target directory, and the underlying I/O error. The experiment
/// binaries report this and exit nonzero — losing an artifact silently
/// (or as a bare panic backtrace) buries the actual filesystem problem.
#[derive(Debug)]
pub struct TelemetryWriteError {
    /// The workload whose artifacts were being written.
    pub workload: Workload,
    /// The output directory that rejected the write.
    pub dir: PathBuf,
    /// The underlying filesystem error.
    pub source: std::io::Error,
}

impl std::fmt::Display for TelemetryWriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "writing telemetry artifacts for {} into {}: {}",
            self.workload,
            self.dir.display(),
            self.source
        )
    }
}

impl std::error::Error for TelemetryWriteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Simulate one workload with a [`TelemetryObserver`] and host
/// self-profiling attached, writing the three artifacts
/// (`{prefix}_{workload}.metrics.jsonl` / `.timeseries.csv` /
/// `.trace.json`) into `opts.out_dir`. A failed write is returned as
/// [`TelemetryWriteError`] naming the workload, not panicked on.
///
/// # Panics
/// Panics if telemetry is not enabled in `opts` or the run hits the
/// cycle limit (both are caller bugs, not environment failures).
pub fn run_workload_telemetered(
    workload: Workload,
    cfg: &SimConfig,
    opts: &TelemetryOpts,
    prefix: &str,
) -> Result<(SimStats, TelemetryArtifacts), TelemetryWriteError> {
    let dir = opts.out_dir.as_deref().expect("telemetry enabled");
    let program = workload.build(scaled(workload));
    let mut sim = Simulator::new(&program, cfg.clone());
    sim.set_observer(Box::new(TelemetryObserver::with_config(TelemetryConfig {
        sample_every: opts.sample_every,
        ..Default::default()
    })));
    sim.enable_self_profiling();
    let stats = sim.run();
    assert!(
        !stats.hit_cycle_limit,
        "{workload} hit the cycle limit under {cfg:?}"
    );
    let host = sim.host_profile().cloned();
    let mut tel = TelemetryObserver::from_box(sim.take_observer().expect("observer attached"))
        .expect("a TelemetryObserver was attached");
    let name = format!("{prefix}_{}", workload.name());
    let arts = tel
        .write_artifacts(dir, &name, &stats, host.as_ref())
        .map_err(|source| TelemetryWriteError {
            workload,
            dir: dir.to_path_buf(),
            source,
        })?;
    if let Some(h) = &host {
        println!(
            "  {workload}: {} host-side, {} divergence sites, artifacts in {}",
            match h.kips() {
                Some(k) => format!("{k:.1} KIPS"),
                None => "KIPS n/a (wall time below timer resolution)".to_string(),
            },
            tel.branches().len(),
            dir.display(),
        );
    }
    Ok((stats, arts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::{named_config, Config};

    #[test]
    fn harmonic_mean_basics() {
        assert!((harmonic_mean(&[2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((harmonic_mean(&[1.0, 2.0]) - 4.0 / 3.0).abs() < 1e-12);
        // Harmonic ≤ arithmetic.
        assert!(harmonic_mean(&[1.0, 4.0]) < 2.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn harmonic_mean_rejects_zero() {
        harmonic_mean(&[1.0, 0.0]);
    }

    #[test]
    fn matrix_order_is_deterministic() {
        std::env::set_var("PP_SCALE", "0.01");
        let workloads = [Workload::Vortex, Workload::Compress];
        let configs = [
            named_config(Config::Monopath, 10),
            named_config(Config::SeeJrs, 10),
        ];
        let r = run_matrix(&workloads, &configs);
        assert_eq!(r.len(), 4);
        assert_eq!(r[0].workload, Workload::Vortex);
        assert_eq!(r[0].config_index, 0);
        assert_eq!(r[1].config_index, 1);
        assert_eq!(r[2].workload, Workload::Compress);
        for cell in &r {
            assert!(cell.stats.committed_instructions > 0);
        }
    }

    #[test]
    fn failing_matrix_cell_is_named_in_the_panic() {
        std::env::set_var("PP_SCALE", "0.01");
        let good = named_config(Config::Monopath, 10);
        let mut bad = named_config(Config::Monopath, 10);
        bad.max_cycles = 10; // guarantees hit_cycle_limit
        let payload = std::panic::catch_unwind(|| {
            run_matrix_with_workers(&[Workload::Compress], &[good, bad], 2)
        })
        .expect_err("the strangled cell must fail the matrix");
        let msg = payload
            .downcast_ref::<String>()
            .expect("panic message is a String")
            .clone();
        assert!(msg.contains("workload compress"), "{msg}");
        assert!(msg.contains("config 1"), "{msg}");
        assert!(msg.contains("2 attempts"), "{msg}");
    }

    #[test]
    fn parallelism_bounds() {
        assert_eq!(parallelism(0), 1);
        assert!(parallelism(4) <= 4);
        assert!(parallelism(1000) >= 1);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[3.0]) - 3.0).abs() < 1e-12);
        // Geometric ≤ arithmetic.
        assert!(geometric_mean(&[1.0, 4.0]) < 2.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_zero() {
        geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn speedup_helpers() {
        assert!((speedup_frac(1.14, 1.0) - 0.14).abs() < 1e-12);
        assert!((speedup_pct(1.14, 1.0) - 14.0).abs() < 1e-12);
        assert!(speedup_pct(0.9, 1.0) < 0.0);
    }

    #[test]
    fn telemetry_opts_parse_all_forms() {
        let args = |v: &[&str]| {
            v.iter()
                .map(std::string::ToString::to_string)
                .collect::<Vec<_>>()
        };

        let (o, rest) = TelemetryOpts::parse(args(&["results"]));
        assert!(!o.enabled());
        assert_eq!(o.sample_every, 64);
        assert_eq!(rest, vec!["results".to_string()]);

        let (o, rest) = TelemetryOpts::parse(args(&[
            "--telemetry-out",
            "results/telemetry",
            "out",
            "--telemetry-sample-every=32",
        ]));
        assert!(o.enabled());
        assert_eq!(o.out_dir.unwrap(), PathBuf::from("results/telemetry"));
        assert_eq!(o.sample_every, 32);
        assert_eq!(rest, vec!["out".to_string()]);

        let (o, _) = TelemetryOpts::parse(args(&[
            "--telemetry-out=d",
            "--telemetry-sample-every",
            "128",
        ]));
        assert_eq!(o.out_dir.unwrap(), PathBuf::from("d"));
        assert_eq!(o.sample_every, 128);
    }

    #[test]
    fn telemetry_opts_reject_dangling_flag() {
        let err = TelemetryOpts::try_parse(["--telemetry-out".to_string()]).unwrap_err();
        assert!(err.contains("--telemetry-out needs a directory"), "{err}");
    }

    #[test]
    fn telemetry_opts_reject_bad_interval() {
        let err =
            TelemetryOpts::try_parse(["--telemetry-sample-every=never".to_string()]).unwrap_err();
        assert!(err.contains("--telemetry-sample-every"), "{err}");
        assert!(err.contains("\"never\""), "{err}");
    }

    #[test]
    fn telemetered_run_writes_artifacts() {
        std::env::set_var("PP_SCALE", "0.01");
        let dir = std::env::temp_dir().join(format!("pp-telemetry-test-{}", std::process::id()));
        let opts = TelemetryOpts {
            out_dir: Some(dir.clone()),
            sample_every: 8,
        };
        let cfg = named_config(Config::SeeJrs, 10);
        let (stats, arts) = run_workload_telemetered(Workload::Compress, &cfg, &opts, "test")
            .expect("writable out-dir");
        assert!(stats.committed_instructions > 0);
        for p in [&arts.metrics, &arts.timeseries, &arts.trace] {
            let meta = std::fs::metadata(p).unwrap_or_else(|e| panic!("{p:?}: {e}"));
            assert!(meta.len() > 0, "{p:?} is empty");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unwritable_out_dir_is_an_error_naming_the_workload() {
        std::env::set_var("PP_SCALE", "0.01");
        // An out-dir nested *under a regular file* cannot be created on
        // any platform (and regardless of privilege — root ignores
        // permission bits, so a read-only directory wouldn't do).
        let blocker =
            std::env::temp_dir().join(format!("pp-telemetry-blocker-{}", std::process::id()));
        std::fs::write(&blocker, b"not a directory").expect("create blocker file");
        let opts = TelemetryOpts {
            out_dir: Some(blocker.join("sub")),
            sample_every: 8,
        };
        let cfg = named_config(Config::SeeJrs, 10);
        let err = run_workload_telemetered(Workload::Compress, &cfg, &opts, "test")
            .expect_err("write into a file's child must fail");
        assert_eq!(err.workload, Workload::Compress);
        let msg = err.to_string();
        assert!(msg.contains("compress"), "{msg}");
        assert!(msg.contains("telemetry artifacts"), "{msg}");
        std::fs::remove_file(&blocker).ok();
    }
}
