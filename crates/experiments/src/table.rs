//! Minimal text-table formatting for experiment output.

use std::fmt::Write as _;

/// A simple right-aligned text table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as CSV (for spreadsheets / plotting scripts).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let line = |cells: &[String]| {
            cells
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(",")
        };
        out.push_str(&line(&self.header));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }

    /// Render: first column left-aligned, the rest right-aligned.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(std::string::String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i == 0 {
                    let _ = write!(out, "{cell:<w$}");
                } else {
                    let _ = write!(out, "  {cell:>w$}");
                }
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["name", "ipc"]);
        t.row(["go", "2.123"]);
        t.row(["compress", "3.5"]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.contains("compress"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows the same rendered width.
        assert_eq!(lines[0].len(), lines[2].len().max(lines[0].len()));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        Table::new(["a", "b"]).row(["only one"]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a,b", "say \"hi\""]);
        let csv = t.to_csv();
        assert_eq!(csv, "name,value\n\"a,b\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn csv_plain_cells_unquoted() {
        let mut t = Table::new(["x", "y"]);
        t.row(["1", "2.5"]);
        assert_eq!(t.to_csv(), "x,y\n1,2.5\n");
    }
}
