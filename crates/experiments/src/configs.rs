//! The named machine configurations of the paper's evaluation (Fig. 8).

use pp_core::{ConfidenceKind, ExecMode, PredictorKind, SimConfig};
use pp_predictor::JrsConfig;

/// The six configurations compared throughout the evaluation, plus the
/// building blocks for the scalability sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Config {
    /// Perfect branch prediction, monopath ("oracle").
    Oracle,
    /// gshare monopath — the paper's baseline comparator ("gshare").
    Monopath,
    /// SEE with a perfect confidence estimator ("gshare/oracle").
    SeeOracle,
    /// SEE with the modified JRS estimator ("gshare/JRS").
    SeeJrs,
    /// Dual-path with perfect confidence ("gshare/oracle/dual-path").
    DualOracle,
    /// Dual-path with JRS ("gshare/JRS/dual-path").
    DualJrs,
}

/// The order Fig. 8 presents its categories.
pub const CONFIG_ORDER: [Config; 6] = [
    Config::Monopath,
    Config::SeeJrs,
    Config::SeeOracle,
    Config::DualJrs,
    Config::DualOracle,
    Config::Oracle,
];

impl Config {
    /// The paper's legend label.
    pub fn label(&self) -> &'static str {
        match self {
            Config::Oracle => "oracle",
            Config::Monopath => "gshare/monopath",
            Config::SeeOracle => "gshare/oracle",
            Config::SeeJrs => "gshare/JRS",
            Config::DualOracle => "gshare/oracle/dual-path",
            Config::DualJrs => "gshare/JRS/dual-path",
        }
    }
}

/// Build a [`SimConfig`] for one named configuration with a given gshare
/// history size (the baseline uses 14 bits). The JRS estimator is always
/// sized equal to the predictor, as in the paper.
pub fn named_config(config: Config, history_bits: u32) -> SimConfig {
    let jrs = ConfidenceKind::Jrs(JrsConfig::paper_baseline().with_index_bits(history_bits));
    let gshare = PredictorKind::Gshare { history_bits };
    match config {
        Config::Oracle => SimConfig::monopath_baseline().with_predictor(PredictorKind::Oracle),
        Config::Monopath => SimConfig::monopath_baseline().with_predictor(gshare),
        Config::SeeOracle => SimConfig::baseline()
            .with_predictor(gshare)
            .with_confidence(ConfidenceKind::Oracle),
        Config::SeeJrs => SimConfig::baseline()
            .with_predictor(gshare)
            .with_confidence(jrs),
        Config::DualOracle => SimConfig::baseline()
            .with_mode(ExecMode::DualPath)
            .with_predictor(gshare)
            .with_confidence(ConfidenceKind::Oracle),
        Config::DualJrs => SimConfig::baseline()
            .with_mode(ExecMode::DualPath)
            .with_predictor(gshare)
            .with_confidence(jrs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<&str> =
            CONFIG_ORDER.iter().map(super::Config::label).collect();
        assert_eq!(labels.len(), CONFIG_ORDER.len());
    }

    #[test]
    fn configs_validate() {
        for c in CONFIG_ORDER {
            named_config(c, 14).validate();
            named_config(c, 10).validate();
        }
    }

    #[test]
    fn monopath_has_no_divergence() {
        let c = named_config(Config::Monopath, 14);
        assert_eq!(c.mode, ExecMode::Monopath);
        assert_eq!(c.confidence, ConfidenceKind::AlwaysHigh);
    }

    #[test]
    fn dual_path_mode_set() {
        assert_eq!(named_config(Config::DualJrs, 14).mode, ExecMode::DualPath);
        assert_eq!(
            named_config(Config::DualOracle, 14).confidence,
            ConfidenceKind::Oracle
        );
    }

    #[test]
    fn jrs_sized_with_predictor() {
        let c = named_config(Config::SeeJrs, 12);
        match c.confidence {
            ConfidenceKind::Jrs(j) => assert_eq!(j.index_bits, 12),
            _ => panic!("expected JRS"),
        }
        assert_eq!(c.predictor, PredictorKind::Gshare { history_bits: 12 });
    }
}
