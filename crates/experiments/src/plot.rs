//! Minimal ASCII line charts, so the figure binaries can *show* the
//! paper's curves, not just tabulate them.

use std::fmt::Write as _;

const GLYPHS: [char; 6] = ['o', '+', 'x', '*', '#', '@'];

/// A multi-series scatter/line chart rendered as ASCII.
///
/// ```
/// use pp_experiments::Chart;
///
/// let mut chart = Chart::new("IPC vs depth", "IPC");
/// chart.series("monopath", [(6.0, 2.34), (8.0, 2.11), (10.0, 1.91)]);
/// chart.series("SEE", [(6.0, 2.49), (8.0, 2.29), (10.0, 2.11)]);
/// let art = chart.render();
/// assert!(art.contains("o monopath"));
/// ```
#[derive(Debug, Clone)]
pub struct Chart {
    title: String,
    y_label: String,
    series: Vec<(String, Vec<(f64, f64)>)>,
    width: usize,
    height: usize,
}

impl Chart {
    /// A chart with a title and y-axis label.
    pub fn new(title: impl Into<String>, y_label: impl Into<String>) -> Self {
        Chart {
            title: title.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            width: 64,
            height: 16,
        }
    }

    /// Set the plot area size in characters.
    ///
    /// # Panics
    /// Panics if either dimension is smaller than 8 characters.
    #[must_use]
    pub fn with_size(mut self, width: usize, height: usize) -> Self {
        assert!(width >= 8 && height >= 8, "chart too small to read");
        self.width = width;
        self.height = height;
        self
    }

    /// Add a named series of `(x, y)` points.
    pub fn series(
        &mut self,
        name: impl Into<String>,
        points: impl IntoIterator<Item = (f64, f64)>,
    ) -> &mut Self {
        self.series
            .push((name.into(), points.into_iter().collect()));
        self
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// `true` with no series.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Render the chart.
    pub fn render(&self) -> String {
        let pts: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|(_, p)| p.iter().copied())
            .collect();
        if pts.is_empty() {
            return format!("{} (no data)\n", self.title);
        }
        let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for (x, y) in &pts {
            x_min = x_min.min(*x);
            x_max = x_max.max(*x);
            y_min = y_min.min(*y);
            y_max = y_max.max(*y);
        }
        // Pad degenerate ranges; anchor y near zero when close.
        if (x_max - x_min).abs() < 1e-12 {
            x_max = x_min + 1.0;
        }
        if (y_max - y_min).abs() < 1e-12 {
            y_max = y_min + 1.0;
        }
        let y_pad = (y_max - y_min) * 0.05;
        let (y_lo, y_hi) = (y_min - y_pad, y_max + y_pad);

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (si, (_, points)) in self.series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for (x, y) in points {
                let cx = ((x - x_min) / (x_max - x_min) * (self.width - 1) as f64).round() as usize;
                let cy = ((y - y_lo) / (y_hi - y_lo) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - cy.min(self.height - 1);
                let col = cx.min(self.width - 1);
                // Later series overwrite; collisions show the newer glyph.
                grid[row][col] = glyph;
            }
        }

        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        for (i, row) in grid.iter().enumerate() {
            let y_here = y_hi - (y_hi - y_lo) * i as f64 / (self.height - 1) as f64;
            let label = if i == 0 || i == self.height - 1 || i == self.height / 2 {
                format!("{y_here:8.2}")
            } else {
                " ".repeat(8)
            };
            let _ = writeln!(out, "{label} |{}", row.iter().collect::<String>());
        }
        let _ = writeln!(out, "{:>8} +{}", "", "-".repeat(self.width));
        let _ = writeln!(
            out,
            "{:>8}  {:<w$.6}{:>right$.6}",
            self.y_label,
            x_min,
            x_max,
            w = self.width / 2,
            right = self.width - self.width / 2
        );
        for (si, (name, _)) in self.series.iter().enumerate() {
            let _ = writeln!(out, "{:>10} {}", GLYPHS[si % GLYPHS.len()], name);
        }
        out
    }
}

impl std::fmt::Display for Chart {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points_at_extremes() {
        let mut c = Chart::new("t", "ipc").with_size(20, 8);
        c.series("a", [(0.0, 0.0), (10.0, 1.0)]);
        let s = c.render();
        assert!(s.contains('o'));
        // Top row holds the max point, bottom row the min point.
        let rows: Vec<&str> = s.lines().collect();
        assert!(rows[1].contains('o'), "max at top: {s}");
        assert!(rows[8].contains('o'), "min at bottom: {s}");
        assert!(s.contains("t\n"));
    }

    #[test]
    fn multiple_series_get_distinct_glyphs() {
        let mut c = Chart::new("t", "y");
        c.series("first", [(0.0, 1.0)]);
        c.series("second", [(1.0, 2.0)]);
        let s = c.render();
        assert!(s.contains("o first"));
        assert!(s.contains("+ second"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn empty_chart_degrades_gracefully() {
        let c = Chart::new("nothing", "y");
        assert!(c.is_empty());
        assert!(c.render().contains("no data"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let mut c = Chart::new("flat", "y");
        c.series("k", [(1.0, 2.0), (2.0, 2.0), (3.0, 2.0)]);
        let s = c.render();
        assert!(s.contains('o'));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_chart_rejected() {
        let _ = Chart::new("t", "y").with_size(4, 4);
    }
}
