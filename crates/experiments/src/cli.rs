//! Command-line parsing helpers shared by the experiment binaries.
//!
//! The binaries are plain `std::env::args` loops (no external argument
//! parser in this offline workspace). These helpers make the failure
//! paths uniform: a *usage* error (bad flag, missing or malformed value)
//! prints one actionable line to stderr and exits with status 2; a
//! *runtime* failure (can't write an artifact, missing baseline file)
//! exits with status 1. Neither produces a panic backtrace — those are
//! reserved for bugs.
//!
//! The `try_*` variants return `Result` so the message text is unit
//! testable; the panic-free process-exit behaviour itself is covered by
//! the negative-path integration tests in `tests/cli_negative.rs`,
//! which spawn the real binaries.

use std::fmt::Display;
use std::str::FromStr;

/// Print an actionable usage message and exit with status 2 (the
/// conventional bad-usage code; status 1 is for runtime failures).
pub fn usage_error(msg: impl Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Print a runtime failure and exit with status 1.
pub fn fail(msg: impl Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

/// The value following `flag`, or a usage error naming the flag and what
/// it expects (e.g. `--out needs a path`).
pub fn require_value(args: &mut impl Iterator<Item = String>, flag: &str, what: &str) -> String {
    match args.next() {
        Some(v) => v,
        None => usage_error(format_args!("{flag} needs {what}")),
    }
}

/// Parse `raw` as a `T`, with a message naming the flag and the value.
pub fn try_parse_value<T: FromStr>(flag: &str, raw: &str, what: &str) -> Result<T, String>
where
    T::Err: Display,
{
    raw.parse()
        .map_err(|e| format!("{flag}: {raw:?} is not {what} ({e})"))
}

/// [`try_parse_value`], exiting with a usage error on failure.
pub fn parse_value<T: FromStr>(flag: &str, raw: &str, what: &str) -> T
where
    T::Err: Display,
{
    try_parse_value(flag, raw, what).unwrap_or_else(|m| usage_error(m))
}

/// Consume and parse the value following `flag` in one step.
pub fn parse_next<T: FromStr>(args: &mut impl Iterator<Item = String>, flag: &str, what: &str) -> T
where
    T::Err: Display,
{
    let raw = require_value(args, flag, what);
    parse_value(flag, &raw, what)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_parse_value_accepts_good_input() {
        assert_eq!(
            try_parse_value::<u64>("--repeat", "3", "a positive integer"),
            Ok(3)
        );
    }

    #[test]
    fn try_parse_value_message_names_flag_and_value() {
        let err = try_parse_value::<u64>("--repeat", "lots", "a positive integer").unwrap_err();
        assert!(err.contains("--repeat"), "{err}");
        assert!(err.contains("\"lots\""), "{err}");
        assert!(err.contains("a positive integer"), "{err}");
    }

    #[test]
    fn try_parse_value_rejects_negative_for_unsigned() {
        assert!(try_parse_value::<u64>("--count", "-1", "a count").is_err());
    }
}
