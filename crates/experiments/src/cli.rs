//! Command-line parsing helpers shared by the experiment binaries.
//!
//! The binaries are plain `std::env::args` loops (no external argument
//! parser in this offline workspace). These helpers make the failure
//! paths uniform: a *usage* error (bad flag, missing or malformed value)
//! prints one actionable line to stderr and exits with status 2; a
//! *runtime* failure (can't write an artifact, missing baseline file)
//! exits with status 1. Neither produces a panic backtrace — those are
//! reserved for bugs.
//!
//! The `try_*` variants return `Result` so the message text is unit
//! testable; the panic-free process-exit behaviour itself is covered by
//! the negative-path integration tests in `tests/cli_negative.rs`,
//! which spawn the real binaries.

use std::fmt::Display;
use std::path::PathBuf;
use std::str::FromStr;

use crate::TelemetryOpts;

/// Print an actionable usage message and exit with status 2 (the
/// conventional bad-usage code; status 1 is for runtime failures).
pub fn usage_error(msg: impl Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Print a runtime failure and exit with status 1.
pub fn fail(msg: impl Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

/// The value following `flag`, or a usage error naming the flag and what
/// it expects (e.g. `--out needs a path`).
pub fn require_value(args: &mut impl Iterator<Item = String>, flag: &str, what: &str) -> String {
    match args.next() {
        Some(v) => v,
        None => usage_error(format_args!("{flag} needs {what}")),
    }
}

/// Parse `raw` as a `T`, with a message naming the flag and the value.
pub fn try_parse_value<T: FromStr>(flag: &str, raw: &str, what: &str) -> Result<T, String>
where
    T::Err: Display,
{
    raw.parse()
        .map_err(|e| format!("{flag}: {raw:?} is not {what} ({e})"))
}

/// [`try_parse_value`], exiting with a usage error on failure.
pub fn parse_value<T: FromStr>(flag: &str, raw: &str, what: &str) -> T
where
    T::Err: Display,
{
    try_parse_value(flag, raw, what).unwrap_or_else(|m| usage_error(m))
}

/// Consume and parse the value following `flag` in one step.
pub fn parse_next<T: FromStr>(args: &mut impl Iterator<Item = String>, flag: &str, what: &str) -> T
where
    T::Err: Display,
{
    let raw = require_value(args, flag, what);
    parse_value(flag, &raw, what)
}

// ---------------------------------------------------------------------
// Unified sweep flags
// ---------------------------------------------------------------------

/// The flag set every sweep-driven binary shares:
///
/// * `--workers N` — worker threads (default: one per core)
/// * `--out-dir DIR` — artifact directory (default: none for the
///   legacy per-figure binaries, `results` for `sweep` and `run_all`)
/// * `--cache-dir DIR` — result cache root (default `results/cache`)
/// * `--no-cache` — disable the result cache entirely
/// * `--resume` — explicit alias for the default cache-on behavior,
///   for scripts that want to state the intent
/// * `--max-cells N` — simulate at most N cells, skip the rest
///   (cache hits are free; this is the deterministic "interrupt")
/// * `--quiet` — suppress per-cell progress lines
/// * `--telemetry-out DIR` / `--telemetry-sample-every N` — as before
///
/// Every value flag accepts both `--flag VALUE` and `--flag=VALUE`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepOpts {
    /// Worker thread count; 0 = one per available core.
    pub workers: usize,
    /// Where rendered artifacts (CSVs etc.) are written; `None` prints
    /// to stdout only.
    pub out_dir: Option<PathBuf>,
    /// Result-cache root; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Cell budget for this run (`--max-cells`).
    pub max_cells: Option<usize>,
    /// Suppress progress output.
    pub quiet: bool,
    /// Telemetry artifact options.
    pub telemetry: TelemetryOpts,
}

impl Default for SweepOpts {
    fn default() -> Self {
        SweepOpts {
            workers: 0,
            out_dir: None,
            cache_dir: Some(PathBuf::from(pp_sweep::DEFAULT_CACHE_DIR)),
            max_cells: None,
            quiet: false,
            telemetry: TelemetryOpts::default(),
        }
    }
}

impl SweepOpts {
    /// Parse the unified flags out of `args`, returning the options and
    /// the remaining positional arguments (in order). Unknown `--flags`
    /// are an error so typos fail loudly instead of being treated as
    /// positionals.
    pub fn try_parse(
        args: impl IntoIterator<Item = String>,
    ) -> Result<(Self, Vec<String>), String> {
        let (telemetry, rest) = TelemetryOpts::try_parse(args)?;
        let mut opts = SweepOpts {
            telemetry,
            ..Default::default()
        };
        let mut positional = Vec::new();
        let mut it = rest.into_iter();
        let value = |flag: &str,
                     inline: Option<String>,
                     it: &mut dyn Iterator<Item = String>,
                     what: &str| {
            match inline {
                Some(v) => Ok(v),
                None => it.next().ok_or(format!("{flag} needs {what}")),
            }
        };
        while let Some(a) = it.next() {
            let (flag, inline) = match a.split_once('=') {
                Some((f, v)) if f.starts_with("--") => (f.to_string(), Some(v.to_string())),
                _ => (a.clone(), None),
            };
            match flag.as_str() {
                "--workers" => {
                    let v = value("--workers", inline, &mut it, "a thread count")?;
                    opts.workers = try_parse_value("--workers", &v, "a thread count")?;
                }
                "--out-dir" => {
                    opts.out_dir = Some(PathBuf::from(value(
                        "--out-dir",
                        inline,
                        &mut it,
                        "a directory",
                    )?));
                }
                "--cache-dir" => {
                    opts.cache_dir = Some(PathBuf::from(value(
                        "--cache-dir",
                        inline,
                        &mut it,
                        "a directory",
                    )?));
                }
                "--no-cache" => opts.cache_dir = None,
                "--resume" => {
                    // Resuming is the default (the cache is on); the flag
                    // exists so invocations can state the intent.
                }
                "--max-cells" => {
                    let v = value("--max-cells", inline, &mut it, "a cell count")?;
                    opts.max_cells = Some(try_parse_value("--max-cells", &v, "a cell count")?);
                }
                "--quiet" => opts.quiet = true,
                other if other.starts_with("--") => {
                    return Err(format!("unknown argument: {other}"));
                }
                _ => positional.push(a),
            }
        }
        Ok((opts, positional))
    }

    /// [`Self::try_parse`], exiting with a usage error (status 2) on
    /// malformed input.
    pub fn parse(args: impl IntoIterator<Item = String>) -> (Self, Vec<String>) {
        Self::try_parse(args).unwrap_or_else(|m| usage_error(m))
    }

    /// Parse from the process arguments (skipping `argv[0]`).
    pub fn from_env() -> (Self, Vec<String>) {
        Self::parse(std::env::args().skip(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_parse_value_accepts_good_input() {
        assert_eq!(
            try_parse_value::<u64>("--repeat", "3", "a positive integer"),
            Ok(3)
        );
    }

    #[test]
    fn try_parse_value_message_names_flag_and_value() {
        let err = try_parse_value::<u64>("--repeat", "lots", "a positive integer").unwrap_err();
        assert!(err.contains("--repeat"), "{err}");
        assert!(err.contains("\"lots\""), "{err}");
        assert!(err.contains("a positive integer"), "{err}");
    }

    #[test]
    fn try_parse_value_rejects_negative_for_unsigned() {
        assert!(try_parse_value::<u64>("--count", "-1", "a count").is_err());
    }

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(std::string::ToString::to_string).collect()
    }

    #[test]
    fn sweep_opts_defaults() {
        let (o, rest) = SweepOpts::try_parse(args(&["fig9"])).unwrap();
        assert_eq!(o.workers, 0);
        assert_eq!(o.out_dir, None);
        assert_eq!(o.cache_dir, Some(PathBuf::from("results/cache")));
        assert_eq!(o.max_cells, None);
        assert!(!o.quiet);
        assert_eq!(rest, args(&["fig9"]));
    }

    #[test]
    fn sweep_opts_parse_both_value_forms() {
        let (o, rest) = SweepOpts::try_parse(args(&[
            "run",
            "--workers=3",
            "--out-dir",
            "out",
            "--cache-dir=c",
            "--max-cells",
            "7",
            "--quiet",
            "--telemetry-out=t",
            "fig9",
        ]))
        .unwrap();
        assert_eq!(o.workers, 3);
        assert_eq!(o.out_dir, Some(PathBuf::from("out")));
        assert_eq!(o.cache_dir, Some(PathBuf::from("c")));
        assert_eq!(o.max_cells, Some(7));
        assert!(o.quiet);
        assert_eq!(o.telemetry.out_dir, Some(PathBuf::from("t")));
        assert_eq!(rest, args(&["run", "fig9"]));
    }

    #[test]
    fn sweep_opts_no_cache_and_resume() {
        let (o, _) = SweepOpts::try_parse(args(&["--no-cache"])).unwrap();
        assert_eq!(o.cache_dir, None);
        // --resume is the stated default; it must parse and change nothing.
        let (o, _) = SweepOpts::try_parse(args(&["--resume"])).unwrap();
        assert_eq!(o.cache_dir, Some(PathBuf::from("results/cache")));
    }

    #[test]
    fn sweep_opts_reject_unknown_flag() {
        let err = SweepOpts::try_parse(args(&["--frobnicate"])).unwrap_err();
        assert!(err.contains("unknown argument"), "{err}");
        assert!(err.contains("--frobnicate"), "{err}");
    }

    #[test]
    fn sweep_opts_reject_dangling_and_malformed_values() {
        let err = SweepOpts::try_parse(args(&["--workers"])).unwrap_err();
        assert!(err.contains("--workers needs a thread count"), "{err}");
        let err = SweepOpts::try_parse(args(&["--max-cells", "many"])).unwrap_err();
        assert!(err.contains("--max-cells"), "{err}");
        assert!(err.contains("\"many\""), "{err}");
        let err = SweepOpts::try_parse(args(&["--out-dir"])).unwrap_err();
        assert!(err.contains("--out-dir needs a directory"), "{err}");
    }
}
