//! Input-set sensitivity: do the paper's conclusions survive different
//! workload inputs?
//!
//! The paper scaled down SPEC input sets; this study re-runs the headline
//! comparison (SEE/JRS vs. monopath) on three different pseudo-random
//! input data sets per workload (`Workload::build_seeded`). The *sign*
//! and rough magnitude of every SEE effect should be input-independent.

use pp_core::Simulator;
use pp_experiments::{harmonic_mean, named_config, scaled, speedup_frac, Config, Table};
use pp_workloads::Workload;

const SEEDS: [u64; 3] = [0, 0x5eed_0001, 0x5eed_0002];

fn main() {
    let mono = named_config(Config::Monopath, 14);
    let see = named_config(Config::SeeJrs, 14);

    let mut t = Table::new(
        std::iter::once("benchmark".to_string())
            .chain(SEEDS.iter().map(|s| format!("gain% seed {s:#x}"))),
    );
    let mut per_seed_gains: Vec<Vec<(f64, f64)>> = vec![Vec::new(); SEEDS.len()];

    for w in Workload::ALL {
        let mut cells = vec![w.name().to_string()];
        for (si, &seed) in SEEDS.iter().enumerate() {
            let program = w.build_seeded(scaled(w), seed);
            let m = Simulator::new(&program, mono.clone()).run();
            let s = Simulator::new(&program, see.clone()).run();
            let gain = speedup_frac(s.ipc(), m.ipc());
            per_seed_gains[si].push((s.ipc(), m.ipc()));
            cells.push(format!("{:+.1}", 100.0 * gain));
        }
        t.row(cells);
    }

    println!("SEE/JRS gain over monopath, three input sets per workload");
    println!("{t}");
    for (si, &seed) in SEEDS.iter().enumerate() {
        let sees: Vec<f64> = per_seed_gains[si].iter().map(|(s, _)| *s).collect();
        let monos: Vec<f64> = per_seed_gains[si].iter().map(|(_, m)| *m).collect();
        println!(
            "seed {seed:#x}: hmean SEE {:.3} vs monopath {:.3} ({:+.1}%)",
            harmonic_mean(&sees),
            harmonic_mean(&monos),
            100.0 * (harmonic_mean(&sees) / harmonic_mean(&monos) - 1.0),
        );
    }
}
