//! Regenerate the §5.1 analysis: fetched/committed ratios, JRS PVN per
//! benchmark, useless-instruction deltas, and per-benchmark SEE speedups.
//!
//! Paper reference points: monopath fetches 1.86× what it commits; JRS
//! PVN is ≈16% on m88ksim and >40% elsewhere; SEE cuts useless
//! instructions by ~15% on average but *increases* them 29% on m88ksim.

use pp_experiments::experiments::{fig8, sec51};
use pp_experiments::Table;

fn main() {
    let data = fig8();
    let rows = sec51(&data);

    let mut t = Table::new([
        "benchmark",
        "fetch/commit (mono)",
        "JRS PVN %",
        "useless Δ%",
        "SEE speedup %",
    ]);
    for r in &rows {
        t.row([
            r.workload.name().to_string(),
            format!("{:.2}", r.mono_fetch_ratio),
            format!("{:.1}", 100.0 * r.pvn),
            format!("{:+.1}", 100.0 * r.useless_delta),
            format!("{:+.1}", 100.0 * r.see_speedup),
        ]);
    }
    let mean_ratio: f64 = rows.iter().map(|r| r.mono_fetch_ratio).sum::<f64>() / rows.len() as f64;
    println!("§5.1 analysis (paper: mean fetch/commit 1.86; PVN >40% except m88ksim ~16%)");
    println!("{t}");
    println!("mean monopath fetch/commit ratio: {mean_ratio:.2}  (paper: 1.86)");
}
