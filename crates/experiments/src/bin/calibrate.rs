//! Workload calibration tool: dynamic instructions per scale unit,
//! branch density, and gshare-14 misprediction rate per workload.
//!
//! Used when tuning `Workload::default_scale` and the workload input
//! parameters against the paper's Table 1.

use pp_experiments::{named_config, Config, Table};
use pp_workloads::Workload;

fn main() {
    let cfg = named_config(Config::Monopath, 14);
    let mut t = Table::new([
        "workload",
        "scale",
        "dyn-instr",
        "instr/unit",
        "branch%",
        "mispredict%",
        "IPC",
    ]);
    for w in Workload::ALL {
        let scale = pp_experiments::scaled(w);
        let func = w.characterize(scale);
        let stats = pp_experiments::run_workload(w, &cfg);
        t.row([
            w.name().to_string(),
            scale.to_string(),
            func.instructions.to_string(),
            format!("{:.1}", func.instructions as f64 / scale as f64),
            format!(
                "{:.1}",
                100.0 * func.cond_branches as f64 / func.instructions as f64
            ),
            format!("{:.2}", 100.0 * stats.mispredict_rate()),
            format!("{:.3}", stats.ipc()),
        ]);
    }
    println!("{t}");
}
