//! `serve` — stand up the pp-serve daemon over the experiment registry.
//!
//! ```sh
//! serve fig9 fig10            # serve two grids to remote workers
//! serve all                   # the complete evaluation
//! serve fig9 --addr 0.0.0.0:7117 --max-clients 16
//! ```
//!
//! The daemon leases sweep cells to `work` processes over line-framed
//! TCP/JSONL and collects their stats into the shared content-addressed
//! result cache (`--cache-dir`, default `results/cache`) — the same
//! cache `sweep run` reads, so a completed distributed sweep makes the
//! subsequent local render entirely cache-hits. Workers never receive
//! configurations over the wire; they rebuild the grid from the
//! registry and the handshake proves both sides agree (one `grid_sig`
//! equality covering every cell fingerprint).
//!
//! Flags: `--addr HOST:PORT` (default `127.0.0.1:0`, port printed on
//! startup), `--cache-dir DIR`, `--no-cache`, `--max-clients N`,
//! `--quota N` (leases per client), `--max-inflight N`,
//! `--lease-timeout-ms MS`, `--linger` (keep serving `done` to late
//! workers until killed), `--telemetry-out DIR` (export the `serve.*`
//! registry as JSONL on exit).
//!
//! Exits 0 when every cell completed, 1 otherwise. Honours `PP_SCALE`
//! exactly like the local sweep (workers must run with the same value —
//! skew is caught by the handshake, not silently cached).

use std::path::PathBuf;
use std::time::Duration;

use pp_experiments::cli::{self, parse_value};
use pp_experiments::suite;
use pp_serve::{ServeConfig, Server};
use pp_sweep::{ResultStore, SweepCell, DEFAULT_CACHE_DIR};

const USAGE: &str = "usage: serve <name...|all> [--addr HOST:PORT] [--cache-dir DIR] [--no-cache] \
[--max-clients N] [--quota N] [--max-inflight N] [--lease-timeout-ms MS] [--linger] \
[--telemetry-out DIR]";

struct Opts {
    addr: String,
    cache_dir: Option<PathBuf>,
    linger: bool,
    telemetry_out: Option<PathBuf>,
    cfg: ServeConfig,
}

fn parse() -> (Opts, Vec<String>) {
    let mut opts = Opts {
        addr: "127.0.0.1:0".to_string(),
        cache_dir: Some(PathBuf::from(DEFAULT_CACHE_DIR)),
        linger: false,
        telemetry_out: None,
        cfg: ServeConfig::default(),
    };
    let mut names = Vec::new();
    let mut it = std::env::args().skip(1);
    let value =
        |flag: &str, inline: Option<String>, it: &mut dyn Iterator<Item = String>| match inline
            .or_else(|| it.next())
        {
            Some(v) => v,
            None => cli::usage_error(format_args!("{flag} needs a value")),
        };
    while let Some(a) = it.next() {
        let (flag, inline) = match a.split_once('=') {
            Some((f, v)) if f.starts_with("--") => (f.to_string(), Some(v.to_string())),
            _ => (a.clone(), None),
        };
        match flag.as_str() {
            "--addr" => opts.addr = value("--addr", inline, &mut it),
            "--cache-dir" => {
                opts.cache_dir = Some(PathBuf::from(value("--cache-dir", inline, &mut it)));
            }
            "--no-cache" => opts.cache_dir = None,
            "--max-clients" => {
                let v = value("--max-clients", inline, &mut it);
                opts.cfg.max_clients = parse_value("--max-clients", &v, "a client count");
            }
            "--quota" => {
                let v = value("--quota", inline, &mut it);
                opts.cfg.quota_per_client = parse_value("--quota", &v, "a lease count");
            }
            "--max-inflight" => {
                let v = value("--max-inflight", inline, &mut it);
                opts.cfg.max_inflight = parse_value("--max-inflight", &v, "a lease count");
            }
            "--lease-timeout-ms" => {
                let v = value("--lease-timeout-ms", inline, &mut it);
                opts.cfg.lease_timeout =
                    Duration::from_millis(parse_value("--lease-timeout-ms", &v, "milliseconds"));
            }
            "--linger" => opts.linger = true,
            "--telemetry-out" => {
                opts.telemetry_out = Some(PathBuf::from(value("--telemetry-out", inline, &mut it)));
            }
            other if other.starts_with("--") => {
                cli::usage_error(format_args!("unknown argument: {other}\n{USAGE}"));
            }
            _ => names.push(a),
        }
    }
    (opts, names)
}

fn main() {
    let (opts, mut names) = parse();
    if names.is_empty() {
        cli::usage_error(USAGE);
    }
    if names.iter().any(|n| n == "all") {
        if names.len() > 1 {
            cli::usage_error("`all` cannot be combined with other names");
        }
        names = suite::names().iter().map(ToString::to_string).collect();
    }
    let mut experiments: Vec<(String, Vec<SweepCell>)> = Vec::new();
    for n in &names {
        match suite::find(n) {
            Some(exp) => experiments.push((n.clone(), exp.grid())),
            None => cli::usage_error(format_args!(
                "unknown experiment `{n}`; known: {}",
                suite::names().join(", ")
            )),
        }
    }
    let store = opts.cache_dir.as_ref().map(ResultStore::new);
    let server = match Server::bind(&opts.addr, experiments, store, opts.cfg) {
        Ok(s) => s,
        Err(e) => cli::fail(format_args!("binding {}: {e}", opts.addr)),
    };
    match server.local_addr() {
        Ok(addr) => println!(
            "[pp-serve] listening on {addr} ({} experiment(s))",
            names.len()
        ),
        Err(e) => cli::fail(format_args!("no local address: {e}")),
    }
    let summary = server.run(!opts.linger);
    println!("[pp-serve] {}", summary.summary());
    if let Some(dir) = &opts.telemetry_out {
        let path = dir.join("serve.metrics.jsonl");
        let write = std::fs::create_dir_all(dir).and_then(|()| {
            let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
            pp_telemetry::write_registry_jsonl(&mut f, &summary.registry).map(|_| ())
        });
        match write {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => cli::fail(format_args!("writing {}: {e}", path.display())),
        }
    }
    std::process::exit(i32::from(!summary.all_complete()));
}
