//! Differential fuzzing driver: random ISA programs through the
//! simulator with the lock-step oracle and the per-cycle sanitizer
//! armed, under monopath, SEE/JRS, and dual-path/JRS.
//!
//! ```sh
//! cargo run --release -p pp-experiments --bin fuzz_check -- \
//!     [--count N] [--seed S]
//! ```
//!
//! Runs `N` seeded random programs (default 1000, seeds `S..S+N`).
//! Every program is first validated to halt on the architectural
//! emulator, then simulated under all three configurations, then run
//! through each configuration's fast-forward differential pair
//! (cycle-exact vs quiescent-cycle elision, final stats byte-compared);
//! any oracle divergence, sanitizer violation, fast-forward divergence,
//! starvation, or deadlock fails the run. The first failing case is minimized with delta debugging and
//! printed as a plan + disassembly listing that reproduces the failure,
//! and the process exits 1. CI runs a 1k-seed smoke; the acceptance bar
//! for simulator changes is a clean 10k run:
//!
//! ```sh
//! cargo run --release -p pp-experiments --bin fuzz_check -- --count 10000
//! ```
//!
//! `--dump-selftest PATH` instead provokes one deterministic checker
//! failure (a non-halting loop under commit checking) with the flight
//! recorder armed, writes the failure report plus the recorder dump to
//! `PATH`, and exits 0 iff the dump captured the pre-failure history —
//! CI uses this to pin the dump-on-failure path end to end.

use pp_check::{fuzz, listing, FUZZ_CONFIGS};
use pp_core::{SimConfig, Simulator, DEFAULT_FLIGHT_DEPTH};
use pp_experiments::cli;
use pp_isa::{reg, Asm};

/// Deterministically trip the commit checker and return the failure
/// report with the flight-recorder dump appended, exactly as
/// `check_program` builds it for a real fuzz failure.
fn dump_selftest() -> String {
    let mut a = Asm::new();
    a.li(reg::T0, 0);
    let top = a.here();
    a.addi(reg::T0, reg::T0, 1);
    a.jmp(top);
    a.halt();
    let program = a.assemble().expect("selftest program assembles");

    let mut cfg = SimConfig::baseline().with_commit_checking();
    cfg.max_cycles = 400;
    let mut sim = Simulator::new(&program, cfg);
    sim.enable_flight_recorder(DEFAULT_FLIGHT_DEPTH);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let stats = sim.run();
        sim.finish_commit_check();
        stats
    }));
    let msg = match outcome {
        Ok(stats) => {
            assert!(
                stats.hit_cycle_limit,
                "selftest loop must starve the cycle limit"
            );
            "pipeline hit the cycle limit on a non-halting selftest program".to_string()
        }
        Err(payload) => payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_else(|| "non-string panic payload".to_string()),
    };
    format!("[selftest] {msg}\n{}", sim.flight_dump())
}

fn main() {
    let mut count: u64 = 1000;
    let mut seed: u64 = 0;
    let mut selftest_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--count" => {
                count = cli::parse_next(&mut args, "--count", "a number of programs");
                if count == 0 {
                    cli::usage_error("--count must be at least 1");
                }
            }
            "--seed" => seed = cli::parse_next(&mut args, "--seed", "a 64-bit seed"),
            "--dump-selftest" => match args.next() {
                Some(p) => selftest_path = Some(p),
                None => cli::usage_error("--dump-selftest needs an output path"),
            },
            other => cli::usage_error(format_args!(
                "unknown argument {other:?} (expected --count, --seed, or --dump-selftest)"
            )),
        }
    }

    if let Some(path) = selftest_path {
        // The intentional failure panics inside the checker; silence the
        // default hook's backtrace for it, as the fuzz loop below does.
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let report = dump_selftest();
        std::panic::set_hook(default_hook);
        std::fs::write(&path, &report)
            .unwrap_or_else(|e| cli::usage_error(format_args!("cannot write {path:?}: {e}")));
        let ok = report.contains("flight recorder:") && report.contains("cycle");
        println!(
            "fuzz_check: dump selftest wrote {} bytes to {path} ({})",
            report.len(),
            if ok { "dump present" } else { "DUMP MISSING" }
        );
        std::process::exit(i32::from(!ok));
    }

    println!(
        "fuzz_check: {count} programs from seed {seed}, configs {}, oracle + sanitizer armed",
        FUZZ_CONFIGS.join("/")
    );

    // Failing cases are *expected* to panic inside the checkers (that is
    // how the oracle and sanitizer report); silence the default hook's
    // per-panic backtrace spew while the driver catches and shrinks, and
    // restore it afterwards so driver bugs still print normally.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = fuzz(seed, count, |done| {
        eprintln!("  {done}/{count} clean");
    });
    std::panic::set_hook(default_hook);

    match outcome.failure {
        None => {
            println!(
                "fuzz_check: all {} programs clean (zero divergences, zero violations)",
                outcome.cases_run
            );
        }
        Some(f) => {
            eprintln!(
                "fuzz_check: seed {} FAILED after {} clean cases",
                f.seed,
                outcome.cases_run - 1
            );
            eprintln!("{}", f.report);
            eprintln!(
                "\nminimized plan ({} of {} ops) — reproduce with --seed {} --count 1:",
                f.minimized.len(),
                f.ops.len(),
                f.seed
            );
            for op in &f.minimized {
                eprintln!("  {op:?}");
            }
            eprintln!("\nassembled listing of the minimized program:");
            eprintln!("{}", listing(&f.minimized));
            std::process::exit(1);
        }
    }
}
