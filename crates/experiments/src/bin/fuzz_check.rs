//! Differential fuzzing driver: random ISA programs through the
//! simulator with the lock-step oracle and the per-cycle sanitizer
//! armed, under monopath, SEE/JRS, and dual-path/JRS.
//!
//! ```sh
//! cargo run --release -p pp-experiments --bin fuzz_check -- \
//!     [--count N] [--seed S]
//! ```
//!
//! Runs `N` seeded random programs (default 1000, seeds `S..S+N`).
//! Every program is first validated to halt on the architectural
//! emulator, then simulated under all three configurations; any oracle
//! divergence, sanitizer violation, starvation, or deadlock fails the
//! run. The first failing case is minimized with delta debugging and
//! printed as a plan + disassembly listing that reproduces the failure,
//! and the process exits 1. CI runs a 1k-seed smoke; the acceptance bar
//! for simulator changes is a clean 10k run:
//!
//! ```sh
//! cargo run --release -p pp-experiments --bin fuzz_check -- --count 10000
//! ```

use pp_check::{fuzz, listing, FUZZ_CONFIGS};
use pp_experiments::cli;

fn main() {
    let mut count: u64 = 1000;
    let mut seed: u64 = 0;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--count" => {
                count = cli::parse_next(&mut args, "--count", "a number of programs");
                if count == 0 {
                    cli::usage_error("--count must be at least 1");
                }
            }
            "--seed" => seed = cli::parse_next(&mut args, "--seed", "a 64-bit seed"),
            other => cli::usage_error(format_args!(
                "unknown argument {other:?} (expected --count or --seed)"
            )),
        }
    }

    println!(
        "fuzz_check: {count} programs from seed {seed}, configs {}, oracle + sanitizer armed",
        FUZZ_CONFIGS.join("/")
    );

    // Failing cases are *expected* to panic inside the checkers (that is
    // how the oracle and sanitizer report); silence the default hook's
    // per-panic backtrace spew while the driver catches and shrinks, and
    // restore it afterwards so driver bugs still print normally.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = fuzz(seed, count, |done| {
        eprintln!("  {done}/{count} clean");
    });
    std::panic::set_hook(default_hook);

    match outcome.failure {
        None => {
            println!(
                "fuzz_check: all {} programs clean (zero divergences, zero violations)",
                outcome.cases_run
            );
        }
        Some(f) => {
            eprintln!(
                "fuzz_check: seed {} FAILED after {} clean cases",
                f.seed,
                outcome.cases_run - 1
            );
            eprintln!("{}", f.report);
            eprintln!(
                "\nminimized plan ({} of {} ops) — reproduce with --seed {} --count 1:",
                f.minimized.len(),
                f.ops.len(),
                f.seed
            );
            for op in &f.minimized {
                eprintln!("  {op:?}");
            }
            eprintln!("\nassembled listing of the minimized program:");
            eprintln!("{}", listing(&f.minimized));
            std::process::exit(1);
        }
    }
}
