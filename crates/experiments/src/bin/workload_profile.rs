//! Thin shim over `sweep run workload_profile` — see
//! `pp_experiments::suite`.
//!
//! Keeps the historical positional argument: with no argument, prints a
//! summary of all eight workloads; with a workload name (e.g. `go`),
//! prints its annotated listing. Also accepts the unified sweep flags.

use pp_experiments::cli::{self, SweepOpts};
use pp_experiments::suite::{self, WorkloadProfileExp};
use pp_workloads::Workload;

fn main() {
    let (opts, positional) = SweepOpts::from_env();
    if positional.len() > 1 {
        cli::usage_error(format_args!("unexpected argument {:?}", positional[1]));
    }
    let target = positional.first().map(|name| {
        *Workload::ALL
            .iter()
            .find(|w| w.name() == name.as_str())
            .unwrap_or_else(|| {
                cli::fail(format_args!(
                    "unknown workload `{name}`; expected one of: {}",
                    Workload::ALL.map(|w| w.name()).join(", ")
                ))
            })
    });
    if let Err(msg) = suite::run_one(&WorkloadProfileExp { target }, &opts) {
        cli::fail(msg);
    }
}
