//! Profile a workload: hot loops and per-branch bias, from the
//! functional emulator.
//!
//! ```sh
//! cargo run --release -p pp-experiments --bin workload_profile [name]
//! ```
//!
//! With no argument, prints a summary of all eight workloads; with a
//! workload name (e.g. `go`), prints its annotated listing.

use pp_experiments::Table;
use pp_func::Emulator;
use pp_workloads::Workload;

fn main() {
    let arg = std::env::args().nth(1);
    match arg.as_deref() {
        Some(name) => {
            let Some(w) = Workload::ALL.iter().find(|w| w.name() == name) else {
                eprintln!(
                    "unknown workload `{name}`; expected one of: {}",
                    Workload::ALL.map(|w| w.name()).join(", ")
                );
                std::process::exit(1);
            };
            let scale = (w.default_scale() / 10).max(4);
            let program = w.build(scale);
            let mut emu = Emulator::new(&program);
            let (summary, profile) = emu.run_profiled(1_000_000_000).expect("workload halts");
            println!(
                "{w} at scale {scale}: {} instructions, {} branches\n",
                summary.instructions, summary.cond_branches
            );
            println!("{}", profile.annotate(&program));
        }
        None => {
            let mut t = Table::new([
                "workload",
                "static instrs",
                "dynamic instrs",
                "hottest pc",
                "share %",
            ]);
            for w in Workload::ALL {
                let scale = (w.default_scale() / 10).max(4);
                let program = w.build(scale);
                let mut emu = Emulator::new(&program);
                let (_, profile) = emu.run_profiled(1_000_000_000).expect("halts");
                let (hot_pc, hot_n) = profile.hottest(1)[0];
                t.row([
                    w.name().to_string(),
                    program.len().to_string(),
                    profile.total().to_string(),
                    format!("{hot_pc} ({})", program.code[hot_pc]),
                    format!("{:.1}", 100.0 * hot_n as f64 / profile.total() as f64),
                ]);
            }
            println!("workload profiles (run with a name for the annotated listing)");
            println!("{t}");
        }
    }
}
