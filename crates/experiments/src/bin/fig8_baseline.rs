//! Regenerate Fig. 8: baseline performance of all six configurations.
//!
//! Paper reference points: oracle ≈ +94% over monopath; SEE/oracle-CE
//! recovers about half of that; SEE/JRS ≈ +14% mean (max +36% on go,
//! −8.5% on m88ksim); dual-path gets 58–66% of SEE's improvement.

use pp_experiments::experiments::{config_index, fig8};
use pp_experiments::{
    named_config, run_workload_telemetered, speedup_pct, Config, Table, TelemetryOpts, CONFIG_ORDER,
};
use pp_workloads::Workload;

fn main() {
    let (telemetry, _rest) = TelemetryOpts::from_env();
    let data = fig8();

    let mut t = Table::new(
        std::iter::once("benchmark".to_string())
            .chain(CONFIG_ORDER.iter().map(|c| c.label().to_string())),
    );
    for (wi, w) in Workload::ALL.iter().enumerate() {
        t.row(
            std::iter::once(w.name().to_string()).chain(
                CONFIG_ORDER
                    .iter()
                    .map(|&c| format!("{:.3}", data.ipc(wi, c))),
            ),
        );
    }
    t.row(
        std::iter::once("hmean".to_string()).chain(
            CONFIG_ORDER
                .iter()
                .map(|&c| format!("{:.3}", data.hmean(c))),
        ),
    );
    println!("Fig. 8 — baseline IPC (columns are the paper's legend)");
    println!("{t}");

    let pct = |a: Config, b: Config| speedup_pct(data.speedup(a, b), 1.0);
    println!("derived (paper reference in parentheses):");
    println!(
        "  oracle over monopath:       {:+.1}%  (+94%)",
        pct(Config::Oracle, Config::Monopath)
    );
    println!(
        "  SEE/oracle over monopath:   {:+.1}%  (+48%)",
        pct(Config::SeeOracle, Config::Monopath)
    );
    println!(
        "  SEE/JRS over monopath:      {:+.1}%  (+14%)",
        pct(Config::SeeJrs, Config::Monopath)
    );
    println!(
        "  dual/JRS over monopath:     {:+.1}%",
        pct(Config::DualJrs, Config::Monopath)
    );
    println!(
        "  dual/oracle over monopath:  {:+.1}%",
        pct(Config::DualOracle, Config::Monopath)
    );
    let see = config_index(Config::SeeJrs);
    let mono = config_index(Config::Monopath);
    for (wi, w) in Workload::ALL.iter().enumerate() {
        let s = speedup_pct(data.cells[wi][see].ipc(), data.cells[wi][mono].ipc());
        println!("  SEE/JRS on {:<9} {:+.1}%", format!("{w}:"), s);
    }

    if telemetry.enabled() {
        println!("\ntelemetry pass (SEE/JRS, instrumented re-run):");
        let cfg = named_config(
            Config::SeeJrs,
            pp_experiments::experiments::BASELINE_HISTORY_BITS,
        );
        for w in Workload::ALL {
            if let Err(e) = run_workload_telemetered(w, &cfg, &telemetry, "fig8_see_jrs") {
                pp_experiments::cli::fail(e);
            }
        }
    }
}
