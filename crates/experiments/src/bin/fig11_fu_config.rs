//! Regenerate Fig. 11: IPC vs. functional unit configuration.
//!
//! Paper reference points: SEE beats monopath at every FU count — ≈14%
//! with 3+ units of each type, tapering to ≈6% with a single unit of
//! each type, where SEE wins by harvesting spare capacity created by
//! data-dependence stalls (monopath utilization ≈75–81%, SEE ≈80–85%).

use pp_experiments::experiments::{fig11, SWEEP_SERIES};
use pp_experiments::{Chart, Table};

fn main() {
    let counts = vec![1, 2, 3, 4];
    let points = fig11(&counts);

    let mut t = Table::new(
        std::iter::once("FUs/type".to_string())
            .chain(SWEEP_SERIES.iter().map(|c| c.label().to_string())),
    );
    for p in &points {
        t.row(
            std::iter::once(p.x.to_string()).chain(p.hmean_ipc.iter().map(|v| format!("{v:.3}"))),
        );
    }
    println!("Fig. 11 — IPC vs. functional units of each type (harmonic mean)");
    println!("{t}");

    let mut chart = Chart::new("harmonic-mean IPC (y) vs swept parameter (x)", "IPC");
    for (si, cfg) in SWEEP_SERIES.iter().enumerate() {
        chart.series(
            cfg.label(),
            points.iter().map(|p| (p.x as f64, p.hmean_ipc[si])),
        );
    }
    println!("{chart}");
    println!("SEE/JRS gain over monopath per point:");
    for p in &points {
        println!(
            "  {} of each type: {:+.1}%",
            p.x,
            100.0 * (p.hmean_ipc[3] / p.hmean_ipc[1] - 1.0)
        );
    }
}
