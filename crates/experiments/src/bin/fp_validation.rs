//! Validate the paper's §5.1 floating-point remark.
//!
//! "SEE can even improve performance for the vortex benchmark, which has
//! a misprediction rate of only 1.85%. … We believe that this is also
//! indicative for the potential to obtain performance improvements on
//! other highly predictable programs, like floating point code."
//!
//! This runs a perfectly predictable FP dot-product kernel under
//! monopath and SEE: the expected result is a *small, non-negative*
//! effect — SEE must not hurt predictable FP code, and any divergence it
//! does risk is absorbed by the otherwise-idle FP pipes.

use pp_core::{SimConfig, Simulator};
use pp_experiments::{named_config, speedup_pct, Config};
use pp_workloads::extra::fp_kernel;

fn main() {
    let scale = (300.0 * pp_experiments::scale_factor()) as u64;
    let program = fp_kernel(scale.max(4));

    let run = |cfg: SimConfig| {
        let mut sim = Simulator::new(&program, cfg);
        sim.run()
    };
    let mono = run(named_config(Config::Monopath, 14));
    let see = run(named_config(Config::SeeJrs, 14));

    println!("§5.1 FP validation — predictable dot-product kernel (scale {scale})");
    println!(
        "  monopath: IPC {:.3}  mispredict {:.2}%  FPAdd util {:.1}%  FPMult util {:.1}%",
        mono.ipc(),
        100.0 * mono.mispredict_rate(),
        100.0 * mono.fu_fp_add.utilization(),
        100.0 * mono.fu_fp_mul.utilization(),
    );
    println!(
        "  SEE/JRS:  IPC {:.3}  divergences {}  ({:+.2}% vs monopath)",
        see.ipc(),
        see.divergences,
        speedup_pct(see.ipc(), mono.ipc()),
    );
    println!(
        "\npaper expectation: a small non-negative effect on highly\n\
         predictable code (its vortex datapoint was +4%)."
    );
}
