//! Thin shim over `sweep run sec52` — see `pp_experiments::suite`.
//!
//! Accepts the unified sweep flags (`--workers`, `--out-dir`,
//! `--cache-dir`, `--no-cache`, `--resume`, `--max-cells`,
//! `--quiet`, `--telemetry-out`, `--telemetry-sample-every`).

fn main() {
    pp_experiments::suite::shim_main("sec52");
}
