//! Regenerate the §5.2 dual-path comparison.
//!
//! Paper reference points: oracle dual-path achieves ≈58% of oracle SEE's
//! improvement; real (JRS) dual-path ≈66% of real SEE's; SEE's mean
//! active path count is ≈2.9 and it uses ≤3 paths ≈75% of the time.

use pp_experiments::experiments::{config_index, fig8, sec52};
use pp_experiments::{Config, Table};
use pp_workloads::Workload;

fn main() {
    let data = fig8();
    let s = sec52(&data);

    println!("§5.2 dual-path execution (paper references in parentheses)");
    println!(
        "  oracle dual-path fraction of oracle SEE gain: {:5.1}%  (58%)",
        100.0 * s.oracle_dual_fraction
    );
    println!(
        "  JRS dual-path fraction of JRS SEE gain:       {:5.1}%  (66%)",
        100.0 * s.jrs_dual_fraction
    );
    println!(
        "  mean active paths under SEE/JRS:              {:5.2}   (2.9)",
        s.mean_paths_see
    );
    println!(
        "  cycles with <= 3 live paths under SEE/JRS:    {:5.1}%  (75%)",
        100.0 * s.paths_le3_see
    );
    println!();

    let see = config_index(Config::SeeJrs);
    let mut t = Table::new(["benchmark", "mean paths", "<=3 paths %", "max paths"]);
    for (wi, w) in Workload::ALL.iter().enumerate() {
        let st = &data.cells[wi][see];
        t.row([
            w.name().to_string(),
            format!("{:.2}", st.mean_active_paths()),
            format!("{:.1}", 100.0 * st.paths_at_most(3)),
            st.max_live_paths.to_string(),
        ]);
    }
    println!("per-benchmark path utilization under SEE/JRS:");
    println!("{t}");
}
