//! Ablation studies of PolyPath design choices the paper leaves open.
//!
//! Three studies, all harmonic-mean IPC across the workload suite:
//!
//! 1. **Fetch policy** (paper §6 future work): the paper's exponential
//!    age-decay arbitration vs. strict oldest-first vs. round-robin.
//! 2. **Branch resolution timing** (paper §3.1): out-of-order resolution
//!    at execute (PolyPath's design point, enabled by the CTX comparator)
//!    vs. in-order resolution at commit (the Pentium-Pro-style variant
//!    whose simpler kill logic the paper mentions) — quantifies how much
//!    the tag machinery actually buys.
//! 3. **Adaptive confidence** (paper §5.1 "lesson learned"): plain JRS
//!    vs. JRS gated by its own recent PVN.
//! 4. **Direction predictor** (paper §2 related work): gshare vs. bimodal
//!    vs. two-level local (Yeh–Patt) vs. agree (Sprangle et al.), each as
//!    the base predictor under monopath and SEE.
//! 5. **Cache realism** (extension): the paper's always-hit D-cache vs. a
//!    modeled 8 KiB L1 — does SEE's extra wrong-path memory traffic
//!    pollute the cache or prefetch for the correct path?

use pp_core::{CacheConfig, ConfidenceKind, FetchPolicy, PredictorKind, SimConfig};
use pp_experiments::{harmonic_mean, named_config, run_matrix, Config, Table};
use pp_predictor::AdaptiveConfig;
use pp_workloads::Workload;

fn hmean_of(configs: &[SimConfig]) -> Vec<f64> {
    let results = run_matrix(&Workload::ALL, configs);
    (0..configs.len())
        .map(|ci| {
            let ipcs: Vec<f64> = (0..Workload::ALL.len())
                .map(|wi| results[wi * configs.len() + ci].stats.ipc())
                .collect();
            harmonic_mean(&ipcs)
        })
        .collect()
}

fn main() {
    let see = named_config(Config::SeeJrs, 14);
    let mono = named_config(Config::Monopath, 14);

    // --- 1. Fetch policy -------------------------------------------------
    println!("Ablation 1 — fetch bandwidth arbitration (SEE/JRS):");
    let configs: Vec<SimConfig> = [
        FetchPolicy::ExponentialByAge,
        FetchPolicy::OldestFirst,
        FetchPolicy::RoundRobin,
    ]
    .into_iter()
    .map(|p| see.clone().with_fetch_policy(p))
    .collect();
    let means = hmean_of(&configs);
    let mut t = Table::new(["policy", "hmean IPC"]);
    for (p, m) in ["exponential-by-age (paper)", "oldest-first", "round-robin"]
        .iter()
        .zip(&means)
    {
        t.row([p.to_string(), format!("{m:.3}")]);
    }
    println!("{t}");

    // --- 2. Resolution timing --------------------------------------------
    println!("Ablation 2 — branch resolution timing:");
    let configs = vec![
        mono.clone(),
        mono.clone().with_commit_time_resolution(),
        see.clone(),
        see.clone().with_commit_time_resolution(),
    ];
    let means = hmean_of(&configs);
    let mut t = Table::new(["configuration", "hmean IPC"]);
    for (name, m) in [
        "monopath, resolve at execute",
        "monopath, resolve at commit",
        "SEE/JRS, resolve at execute (PolyPath)",
        "SEE/JRS, resolve at commit",
    ]
    .iter()
    .zip(&means)
    {
        t.row([name.to_string(), format!("{m:.3}")]);
    }
    println!("{t}");
    println!(
        "out-of-order resolution is worth {:+.1}% to monopath and {:+.1}% to SEE\n",
        100.0 * (means[0] / means[1] - 1.0),
        100.0 * (means[2] / means[3] - 1.0),
    );

    // --- 3. Adaptive confidence ------------------------------------------
    println!("Ablation 3 — self-monitoring confidence estimation (§5.1 lesson):");
    let configs = vec![
        mono.clone(),
        see.clone(),
        see.clone()
            .with_confidence(ConfidenceKind::AdaptiveJrs(AdaptiveConfig::paper_baseline())),
    ];
    let results = run_matrix(&Workload::ALL, &configs);
    let mut t = Table::new(["benchmark", "monopath", "SEE/JRS", "SEE/adaptive-JRS"]);
    for (wi, w) in Workload::ALL.iter().enumerate() {
        t.row([
            w.name().to_string(),
            format!("{:.3}", results[wi * 3].stats.ipc()),
            format!("{:.3}", results[wi * 3 + 1].stats.ipc()),
            format!("{:.3}", results[wi * 3 + 2].stats.ipc()),
        ]);
    }
    let hm: Vec<f64> = (0..3)
        .map(|ci| {
            let ipcs: Vec<f64> = (0..Workload::ALL.len())
                .map(|wi| results[wi * 3 + ci].stats.ipc())
                .collect();
            harmonic_mean(&ipcs)
        })
        .collect();
    t.row([
        "hmean".to_string(),
        format!("{:.3}", hm[0]),
        format!("{:.3}", hm[1]),
        format!("{:.3}", hm[2]),
    ]);
    println!("{t}");
    println!(
        "adaptive gate vs plain JRS: {:+.1}% (it should recover the losses on\n\
         low-PVN benchmarks while keeping the gains elsewhere)\n",
        100.0 * (hm[2] / hm[1] - 1.0)
    );

    // --- 4. Direction predictors ------------------------------------------
    println!("Ablation 4 — base direction predictor (~equal state budgets):");
    let predictors: Vec<(&str, PredictorKind)> = vec![
        (
            "gshare-14 (paper)",
            PredictorKind::Gshare { history_bits: 14 },
        ),
        ("bimodal-14", PredictorKind::Bimodal { index_bits: 14 }),
        (
            "two-level local 12/12",
            PredictorKind::TwoLevelLocal {
                bht_bits: 12,
                history_bits: 12,
            },
        ),
        (
            "agree 13/13",
            PredictorKind::Agree {
                bias_bits: 13,
                history_bits: 13,
            },
        ),
    ];
    let mut t = Table::new(["predictor", "monopath IPC", "SEE/JRS IPC", "SEE gain %"]);
    for (name, pk) in predictors {
        let configs = vec![
            mono.clone().with_predictor(pk),
            see.clone().with_predictor(pk),
        ];
        let m = hmean_of(&configs);
        t.row([
            name.to_string(),
            format!("{:.3}", m[0]),
            format!("{:.3}", m[1]),
            format!("{:+.1}", 100.0 * (m[1] / m[0] - 1.0)),
        ]);
    }
    println!("{t}");

    // --- 5. Cache realism --------------------------------------------------
    println!("Ablation 5 — always-hit D-cache (paper) vs modeled 8 KiB L1:");
    let configs = vec![
        mono.clone(),
        mono.clone().with_dcache(CacheConfig::l1_8k()),
        see.clone(),
        see.clone().with_dcache(CacheConfig::l1_8k()),
    ];
    let m = hmean_of(&configs);
    let mut t = Table::new(["configuration", "hmean IPC"]);
    for (name, v) in [
        "monopath, always-hit",
        "monopath, 8 KiB L1",
        "SEE/JRS, always-hit",
        "SEE/JRS, 8 KiB L1",
    ]
    .iter()
    .zip(&m)
    {
        t.row([name.to_string(), format!("{v:.3}")]);
    }
    println!("{t}");
    println!(
        "SEE gain: {:+.1}% always-hit vs {:+.1}% with a real L1",
        100.0 * (m[2] / m[0] - 1.0),
        100.0 * (m[3] / m[1] - 1.0),
    );
}
