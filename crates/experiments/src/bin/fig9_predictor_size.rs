//! Regenerate Fig. 9: IPC vs. branch predictor size (equal-area).
//!
//! Paper reference points: SEE holds a roughly constant ≈0.5 IPC gain
//! over monopath across 1 k–64 k counters (+15% at the small end, +10%
//! at the large end); on iso-performance lines monopath needs ≈5× the
//! predictor state to match SEE.

use pp_experiments::experiments::{fig9, SWEEP_SERIES};
use pp_experiments::{Chart, Table};

fn main() {
    let bits: Vec<u32> = vec![10, 11, 12, 13, 14, 15, 16];
    let points = fig9(&bits);

    let mut t = Table::new(
        ["hist bits", "state kB", "mono mispred %"]
            .into_iter()
            .map(String::from)
            .chain(SWEEP_SERIES.iter().map(|c| c.label().to_string())),
    );
    for p in &points {
        t.row(
            [
                p.x.to_string(),
                format!("{:.2}", p.state_bytes as f64 / 1024.0),
                format!("{:.1}", 100.0 * p.mispredict_rate),
            ]
            .into_iter()
            .chain(p.hmean_ipc.iter().map(|v| format!("{v:.3}"))),
        );
    }
    println!("Fig. 9 — IPC vs. predictor size (harmonic mean over all benchmarks)");
    println!("{t}");

    let mut chart = Chart::new("harmonic-mean IPC (y) vs swept parameter (x)", "IPC");
    for (si, cfg) in SWEEP_SERIES.iter().enumerate() {
        chart.series(
            cfg.label(),
            points.iter().map(|p| (p.x as f64, p.hmean_ipc[si])),
        );
    }
    println!("{chart}");

    // SEE's absolute IPC gain per size (paper: ~constant 0.5).
    println!("SEE/JRS gain over monopath per point:");
    for p in &points {
        println!(
            "  {:>2} bits: {:+.3} IPC ({:+.1}%)",
            p.x,
            p.hmean_ipc[3] - p.hmean_ipc[1],
            100.0 * (p.hmean_ipc[3] / p.hmean_ipc[1] - 1.0)
        );
    }
}
