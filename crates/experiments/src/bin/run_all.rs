//! Run the complete evaluation — every registered experiment — and
//! write text + CSV artifacts. Thin shim over `sweep run all`.
//!
//! ```sh
//! cargo run --release -p pp-experiments --bin run_all [output-dir] \
//!     [--workers N] [--out-dir DIR] [--cache-dir DIR] [--no-cache] \
//!     [--resume] [--max-cells N] [--quiet] \
//!     [--telemetry-out DIR] [--telemetry-sample-every N]
//! ```
//!
//! Honours `PP_SCALE` like every other binary. This is the one-command
//! path from a fresh checkout to the full EXPERIMENTS.md data set. The
//! positional `output-dir` (default `results`) is the historical
//! spelling of `--out-dir`.

use pp_experiments::cli::{self, SweepOpts};
use pp_experiments::suite;

fn main() {
    let (mut opts, positional) = SweepOpts::from_env();
    if positional.len() > 1 {
        cli::usage_error(format_args!("unexpected argument {:?}", positional[1]));
    }
    if opts.out_dir.is_none() {
        opts.out_dir = Some(
            positional
                .first()
                .cloned()
                .unwrap_or_else(|| "results".to_string())
                .into(),
        );
    } else if !positional.is_empty() {
        cli::usage_error("output directory given both positionally and via --out-dir");
    }
    if let Err(msg) = suite::run_all(&opts) {
        cli::fail(msg);
    }
}
