//! Run the complete evaluation — every table, figure, and extension study
//! — and write both text and CSV outputs under `results/`.
//!
//! ```sh
//! cargo run --release -p pp-experiments --bin run_all [output-dir] \
//!     [--telemetry-out DIR] [--telemetry-sample-every N]
//! ```
//!
//! Honours `PP_SCALE` like every other binary. This is the one-command
//! path from a fresh checkout to the full EXPERIMENTS.md data set. With
//! `--telemetry-out`, an instrumented SEE/JRS pass additionally drops
//! per-workload metrics / time-series / Chrome-trace artifacts there.

use std::fmt::Write as _;
use std::path::Path;

use pp_experiments::experiments::{
    self, config_index, fig10, fig11, fig12, fig9, BASELINE_HISTORY_BITS, SWEEP_SERIES,
};
use pp_experiments::{
    cli, named_config, run_workload_telemetered, Config, Table, TelemetryOpts, CONFIG_ORDER,
};
use pp_workloads::Workload;

fn write(dir: &Path, name: &str, contents: &str) {
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap_or_else(|e| panic!("writing {path:?}: {e}"));
    println!("wrote {}", path.display());
}

fn sweep_tables(points: &[experiments::SweepPoint], x_name: &str) -> Table {
    let mut t = Table::new(
        std::iter::once(x_name.to_string())
            .chain(SWEEP_SERIES.iter().map(|c| c.label().to_string())),
    );
    for p in points {
        t.row(
            std::iter::once(p.x.to_string()).chain(p.hmean_ipc.iter().map(|v| format!("{v:.4}"))),
        );
    }
    t
}

fn main() {
    let (telemetry, rest) = TelemetryOpts::from_env();
    let dir = rest.into_iter().next().unwrap_or_else(|| "results".into());
    let dir = Path::new(&dir);
    std::fs::create_dir_all(dir)
        .unwrap_or_else(|e| cli::fail(format_args!("creating output directory {dir:?}: {e}")));

    // Table 1.
    let rows = experiments::table1();
    let mut t = Table::new([
        "benchmark",
        "instructions",
        "cond_branches",
        "taken",
        "mispredict",
    ]);
    for r in &rows {
        t.row([
            r.workload.name().to_string(),
            r.instructions.to_string(),
            r.cond_branches.to_string(),
            format!("{:.4}", r.taken_rate),
            format!("{:.4}", r.mispredict_rate),
        ]);
    }
    write(dir, "table1.csv", &t.to_csv());
    write(dir, "table1.txt", &t.render());

    // Fig. 8 (+ §5.1 + §5.2, all derived from the same matrix).
    let data = experiments::fig8();
    let mut t = Table::new(
        std::iter::once("benchmark".to_string())
            .chain(CONFIG_ORDER.iter().map(|c| c.label().to_string())),
    );
    for (wi, w) in Workload::ALL.iter().enumerate() {
        t.row(
            std::iter::once(w.name().to_string()).chain(
                CONFIG_ORDER
                    .iter()
                    .map(|&c| format!("{:.4}", data.ipc(wi, c))),
            ),
        );
    }
    t.row(
        std::iter::once("hmean".to_string()).chain(
            CONFIG_ORDER
                .iter()
                .map(|&c| format!("{:.4}", data.hmean(c))),
        ),
    );
    write(dir, "fig8.csv", &t.to_csv());
    write(dir, "fig8.txt", &t.render());

    let sec51 = experiments::sec51(&data);
    let mut t = Table::new([
        "benchmark",
        "fetch_ratio",
        "pvn",
        "useless_delta",
        "see_speedup",
    ]);
    for r in &sec51 {
        t.row([
            r.workload.name().to_string(),
            format!("{:.4}", r.mono_fetch_ratio),
            format!("{:.4}", r.pvn),
            format!("{:.4}", r.useless_delta),
            format!("{:.4}", r.see_speedup),
        ]);
    }
    write(dir, "sec51.csv", &t.to_csv());

    let s52 = experiments::sec52(&data);
    let mut txt = String::new();
    let _ = writeln!(txt, "oracle_dual_fraction,{:.4}", s52.oracle_dual_fraction);
    let _ = writeln!(txt, "jrs_dual_fraction,{:.4}", s52.jrs_dual_fraction);
    let _ = writeln!(txt, "mean_paths_see,{:.4}", s52.mean_paths_see);
    let _ = writeln!(txt, "paths_le3_see,{:.4}", s52.paths_le3_see);
    write(dir, "sec52.csv", &txt);

    // Path histogram of the SEE runs (per benchmark), a bonus artifact.
    let see = config_index(Config::SeeJrs);
    let mut t = Table::new(["benchmark", "paths", "cycles"]);
    for (wi, w) in Workload::ALL.iter().enumerate() {
        for (k, c) in data.cells[wi][see].path_cycles.iter().enumerate() {
            if *c > 0 {
                t.row([w.name().to_string(), k.to_string(), c.to_string()]);
            }
        }
    }
    write(dir, "path_histogram.csv", &t.to_csv());

    // Sweeps.
    write(
        dir,
        "fig9.csv",
        &sweep_tables(&fig9(&[10, 11, 12, 13, 14, 15, 16]), "history_bits").to_csv(),
    );
    write(
        dir,
        "fig10.csv",
        &sweep_tables(&fig10(&[64, 128, 256, 512, 1024]), "window").to_csv(),
    );
    write(
        dir,
        "fig11.csv",
        &sweep_tables(&fig11(&[1, 2, 3, 4]), "fus_per_type").to_csv(),
    );
    write(
        dir,
        "fig12.csv",
        &sweep_tables(&fig12(&[6, 7, 8, 9, 10]), "stages").to_csv(),
    );

    if telemetry.enabled() {
        println!("telemetry pass (SEE/JRS, instrumented re-run):");
        let cfg = named_config(Config::SeeJrs, BASELINE_HISTORY_BITS);
        for w in Workload::ALL {
            if let Err(e) = run_workload_telemetered(w, &cfg, &telemetry, "see_jrs") {
                cli::fail(e);
            }
        }
    }

    println!("done.");
}
