//! Regenerate Fig. 10: IPC vs. instruction window size.
//!
//! Paper reference points: gshare-based schemes saturate by ≈128–256
//! entries (mean occupancy ≈145); oracle keeps improving slightly; SEE
//! still beats monopath by ≈9% even with a 64-entry window.

use pp_experiments::experiments::{fig10, BASELINE_HISTORY_BITS, SWEEP_SERIES};
use pp_experiments::{named_config, run_matrix, Chart, Config, Table};
use pp_workloads::Workload;

fn main() {
    let sizes = vec![64, 128, 256, 512, 1024];
    let points = fig10(&sizes);

    let mut t = Table::new(
        std::iter::once("window".to_string())
            .chain(SWEEP_SERIES.iter().map(|c| c.label().to_string())),
    );
    for p in &points {
        t.row(
            std::iter::once(p.x.to_string()).chain(p.hmean_ipc.iter().map(|v| format!("{v:.3}"))),
        );
    }
    println!("Fig. 10 — IPC vs. instruction window size (harmonic mean)");
    println!("{t}");

    let mut chart = Chart::new("harmonic-mean IPC (y) vs swept parameter (x)", "IPC");
    for (si, cfg) in SWEEP_SERIES.iter().enumerate() {
        chart.series(
            cfg.label(),
            points.iter().map(|p| (p.x as f64, p.hmean_ipc[si])),
        );
    }
    println!("{chart}");
    println!("SEE/JRS gain over monopath per point:");
    for p in &points {
        println!(
            "  {:>4} entries: {:+.1}%",
            p.x,
            100.0 * (p.hmean_ipc[3] / p.hmean_ipc[1] - 1.0)
        );
    }

    // §5.3.2's saturation argument: with gshare, mean occupancy of a huge
    // window stops growing (the paper reports ≈145 entries).
    let mut big = named_config(Config::Monopath, BASELINE_HISTORY_BITS).with_window_size(1024);
    big.ctx_positions = pp_ctx::MAX_POSITIONS;
    let results = run_matrix(&Workload::ALL, std::slice::from_ref(&big));
    let occ: f64 = results
        .iter()
        .map(|r| r.stats.mean_window_occupancy())
        .sum::<f64>()
        / results.len() as f64;
    println!(
        "\nmean occupancy of a 1024-entry window under gshare/monopath: \
         {occ:.0} entries (paper: ≈145 — the window saturates long before 1024)"
    );
}
