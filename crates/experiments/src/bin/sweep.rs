//! `sweep` — the unified driver for every experiment in the registry.
//!
//! ```sh
//! sweep list
//! sweep run fig9 [fig10 ...]      # one or more experiments by name
//! sweep run all [--resume]        # the complete evaluation
//! ```
//!
//! Shared flags (all subcommands): `--workers N`, `--out-dir DIR`
//! (default `results`), `--cache-dir DIR` (default `results/cache`),
//! `--no-cache`, `--resume`, `--max-cells N`, `--quiet`,
//! `--telemetry-out DIR`, `--telemetry-sample-every N`. Honours
//! `PP_SCALE`.
//!
//! Completed cells are cached under the cache dir keyed by (workload,
//! seed, scale, behavior revision, canonical config); an interrupted
//! `sweep run` picks up exactly where it stopped, and re-renders of
//! experiments that share cells (fig8/sec51/sec52) are free.

use pp_experiments::cli::{self, SweepOpts};
use pp_experiments::suite;

const USAGE: &str = "usage: sweep <list | run <name...> | run all> [flags]
run `sweep list` for the experiment names and `--help` conventions";

fn main() {
    let (mut opts, positional) = SweepOpts::from_env();
    let mut pos = positional.into_iter();
    match pos.next().as_deref() {
        Some("list") => {
            if let Some(extra) = pos.next() {
                cli::usage_error(format_args!("list takes no arguments, got {extra:?}"));
            }
            let mut t = pp_experiments::Table::new(["name", "cells", "description"]);
            for exp in suite::registry() {
                t.row([
                    exp.name().to_string(),
                    exp.grid().len().to_string(),
                    exp.description().to_string(),
                ]);
            }
            println!("{t}");
        }
        Some("run") => {
            let names: Vec<String> = pos.collect();
            if names.is_empty() {
                cli::usage_error("run needs at least one experiment name, or `all`");
            }
            // Artifacts land in `results` unless the caller says otherwise.
            if opts.out_dir.is_none() {
                opts.out_dir = Some("results".into());
            }
            if names.iter().any(|n| n == "all") {
                if names.len() > 1 {
                    cli::usage_error("`all` cannot be combined with other names");
                }
                if let Err(msg) = suite::run_all(&opts) {
                    cli::fail(msg);
                }
                return;
            }
            // Validate every name before running anything.
            for n in &names {
                if suite::find(n).is_none() {
                    cli::usage_error(format_args!(
                        "unknown experiment `{n}`; known: {}",
                        suite::names().join(", ")
                    ));
                }
            }
            for n in &names {
                if names.len() > 1 {
                    println!("== {n}");
                }
                if let Err(msg) = suite::run_by_name(n, &opts) {
                    cli::fail(msg);
                }
            }
        }
        Some(other) => cli::usage_error(format_args!("unknown subcommand {other:?}\n{USAGE}")),
        None => cli::usage_error(USAGE),
    }
}
