//! Regenerate Table 1: workload characteristics (dynamic instructions and
//! gshare-14 branch misprediction rate per benchmark analog).
//!
//! Paper reference: misprediction rates range from 1.9% (vortex) to 24.8%
//! (go), averaging 7.2%; instruction counts are 100–550 M (we run scaled
//! inputs, as the paper itself did for some benchmarks).

use pp_experiments::experiments::table1;
use pp_experiments::Table;

fn main() {
    let rows = table1();
    let mut t = Table::new([
        "benchmark",
        "instructions (K)",
        "cond branches (K)",
        "taken %",
        "mispredict %",
    ]);
    for r in &rows {
        t.row([
            r.workload.name().to_string(),
            format!("{:.1}", r.instructions as f64 / 1e3),
            format!("{:.1}", r.cond_branches as f64 / 1e3),
            format!("{:.1}", 100.0 * r.taken_rate),
            format!("{:.2}", 100.0 * r.mispredict_rate),
        ]);
    }
    let mean = rows.iter().map(|r| r.mispredict_rate).sum::<f64>() / rows.len() as f64;
    println!("Table 1 — workload characteristics (paper: 1.9%…24.8%, mean 7.2%)");
    println!("{t}");
    println!("mean misprediction rate: {:.2}%", 100.0 * mean);
}
