//! Regenerate Fig. 12: IPC vs. pipeline depth.
//!
//! Paper reference points: IPC decreases slowly with depth; SEE's
//! absolute gain grows with depth (0.49 IPC at 6 stages → 0.56 at 10;
//! +11% → +16%) because the mispredictions SEE hides cost more in deeper
//! pipelines. An 8→10-stage SEE machine still beats the 8-stage monopath.

use pp_experiments::experiments::{fig12, SWEEP_SERIES};
use pp_experiments::{Chart, Table};

fn main() {
    let depths = vec![6, 7, 8, 9, 10];
    let points = fig12(&depths);

    let mut t = Table::new(
        std::iter::once("stages".to_string())
            .chain(SWEEP_SERIES.iter().map(|c| c.label().to_string())),
    );
    for p in &points {
        t.row(
            std::iter::once(p.x.to_string()).chain(p.hmean_ipc.iter().map(|v| format!("{v:.3}"))),
        );
    }
    println!("Fig. 12 — IPC vs. pipeline depth (harmonic mean)");
    println!("{t}");

    let mut chart = Chart::new("harmonic-mean IPC (y) vs swept parameter (x)", "IPC");
    for (si, cfg) in SWEEP_SERIES.iter().enumerate() {
        chart.series(
            cfg.label(),
            points.iter().map(|p| (p.x as f64, p.hmean_ipc[si])),
        );
    }
    println!("{chart}");
    println!("SEE/JRS gain over monopath per depth:");
    for p in &points {
        println!(
            "  {:>2} stages: {:+.3} IPC ({:+.1}%)",
            p.x,
            p.hmean_ipc[3] - p.hmean_ipc[1],
            100.0 * (p.hmean_ipc[3] / p.hmean_ipc[1] - 1.0)
        );
    }
    // Cross-depth comparison: SEE at 8/9/10 stages vs monopath at 8.
    let mono8 = points.iter().find(|p| p.x == 8).map(|p| p.hmean_ipc[1]);
    if let Some(mono8) = mono8 {
        println!("SEE at extended depths vs 8-stage monopath (paper: +14%/+11%/+7%):");
        for d in [8, 9, 10] {
            if let Some(p) = points.iter().find(|p| p.x == d) {
                println!(
                    "  SEE {}-stage vs monopath 8-stage: {:+.1}%",
                    d,
                    100.0 * (p.hmean_ipc[3] / mono8 - 1.0)
                );
            }
        }
    }
}
