//! Kernel throughput benchmark: simulated KIPS over the `run_all`
//! workload set, exported as `BENCH_kernel.json`.
//!
//! ```sh
//! cargo run --release -p pp-experiments --bin bench_kernel -- \
//!     [--out BENCH_kernel.json] [--baseline OLD.json] [--repeat N]
//! ```
//!
//! Runs every workload of the paper's evaluation under the named
//! configurations sequentially (no worker threads, so wall-clock numbers
//! are not distorted by core contention), and writes a JSON report:
//! per-run KIPS plus the per-pipeline-phase host-time breakdown, and an
//! aggregate over the whole set. With `--baseline`, the aggregate of a
//! previously captured report is embedded and the speedup computed —
//! this is how the perf trajectory in `BENCH_kernel.json` is maintained:
//! capture once before an optimization, re-run with `--baseline` after
//! it.
//!
//! Each (workload, config) pair is run **twice**: once clean — no
//! observer, no self-profiling, wall time measured around `run()` — for
//! the KIPS figure, and once with host self-profiling enabled for the
//! phase attribution. The phase timers read the clock twice per phase,
//! five phases per cycle, which adds a per-cycle constant that would
//! otherwise dilute (or mask) kernel speedups; keeping the timing run
//! un-instrumented makes KIPS reflect the simulator alone. Baselines
//! must be captured with the same methodology to be comparable.
//!
//! `--repeat N` runs the timing run N times per pair and keeps the
//! **minimum** wall time. Host-side noise (frequency scaling, other
//! tenants) only ever adds time, so min-of-N estimates the undisturbed
//! cost; on shared machines use `--repeat 3` for both the baseline
//! capture and the comparison run, back to back. Samples at or below
//! the host timer's resolution (zero elapsed seconds) carry no rate
//! information and are skipped rather than allowed to win the min; a
//! pair with no valid sample reports `null` for `wall_s`/`kips`.
//!
//! Honours `PP_SCALE` like every other binary; the scale in use is
//! recorded in the report so baselines are only compared at like scale.

use std::fmt::Write as _;

use pp_experiments::cli;
use pp_experiments::experiments::BASELINE_HISTORY_BITS;
use pp_experiments::{named_config, scale_factor, scaled, Config};
use pp_workloads::Workload;

use pp_core::Simulator;

/// The configurations benchmarked, in order. Monopath exercises the
/// single-path fast path, SEE/JRS the divergence machinery, dual-path
/// the bounded variant.
const BENCH_CONFIGS: [Config; 3] = [Config::Monopath, Config::SeeJrs, Config::DualJrs];

struct RunReport {
    workload: Workload,
    config: Config,
    committed: u64,
    cycles: u64,
    /// Minimum wall time over the repeat runs, counting only samples
    /// above the host timer's resolution; `None` if no run registered.
    wall_s: Option<f64>,
    /// Simulated KIPS from the minimum valid wall time.
    kips: Option<f64>,
    phases: Vec<(&'static str, f64)>,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn run_one(w: Workload, c: Config, repeat: usize) -> RunReport {
    let cfg = named_config(c, BASELINE_HISTORY_BITS);
    let program = w.build(scaled(w));

    // Timing runs: nothing attached, wall clock measured from outside,
    // minimum over `repeat` identical runs. A sample at or below the
    // timer's resolution reads as zero seconds — it carries no rate
    // information, and letting it win the min would turn KIPS into
    // infinity/garbage — so sub-resolution samples are skipped.
    let mut wall: Option<std::time::Duration> = None;
    let mut stats = None;
    for _ in 0..repeat {
        let mut sim = Simulator::new(&program, cfg.clone());
        let start = std::time::Instant::now();
        let s = sim.run();
        let elapsed = start.elapsed();
        if elapsed > std::time::Duration::ZERO {
            wall = Some(wall.map_or(elapsed, |w| w.min(elapsed)));
        }
        assert!(!s.hit_cycle_limit, "{w} hit the cycle limit");
        if let Some(prev) = &stats {
            assert_eq!(&s, prev, "{w} repeat run diverged");
        }
        stats = Some(s);
    }
    let stats = stats.expect("repeat must be nonzero");

    // Attribution run: same simulation, phase timers on.
    let mut prof_sim = Simulator::new(&program, cfg);
    prof_sim.enable_self_profiling();
    let prof_stats = prof_sim.run();
    assert_eq!(
        prof_stats.committed_instructions, stats.committed_instructions,
        "self-profiling must not perturb the simulation"
    );
    let host = prof_sim.host_profile().expect("profiling enabled").clone();

    RunReport {
        workload: w,
        config: c,
        committed: stats.committed_instructions,
        cycles: stats.cycles,
        wall_s: wall.map(|w| w.as_secs_f64()),
        kips: wall.map(|w| stats.committed_instructions as f64 / w.as_secs_f64() / 1e3),
        phases: host
            .phases()
            .iter()
            .map(|(n, d)| (*n, d.as_secs_f64()))
            .collect(),
    }
}

fn main() {
    let mut out = String::from("BENCH_kernel.json");
    let mut baseline: Option<String> = None;
    let mut repeat = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = cli::require_value(&mut args, "--out", "a path"),
            "--baseline" => baseline = Some(cli::require_value(&mut args, "--baseline", "a path")),
            "--repeat" => {
                repeat = cli::parse_next(&mut args, "--repeat", "a positive integer");
                if repeat == 0 {
                    cli::usage_error("--repeat count must be a positive integer");
                }
            }
            other => cli::usage_error(format_args!(
                "unknown argument {other:?} (expected --out, --baseline, or --repeat)"
            )),
        }
    }

    let mut runs = Vec::new();
    // Aggregate over runs that registered a valid (above-resolution)
    // wall time; untimeable runs are excluded from the rate, not
    // averaged in as zero.
    let mut total_committed = 0u64;
    let mut total_wall = 0.0f64;
    for w in Workload::ALL {
        for c in BENCH_CONFIGS {
            let r = run_one(w, c, repeat);
            match (r.kips, r.wall_s) {
                (Some(kips), Some(wall_s)) => {
                    println!(
                        "{:>9} × {:<24} {:>8.1} KIPS  ({} committed in {:.2}s)",
                        w.name(),
                        c.label(),
                        kips,
                        r.committed,
                        wall_s
                    );
                    total_committed += r.committed;
                    total_wall += wall_s;
                }
                _ => println!(
                    "{:>9} × {:<24}      n/a  ({} committed; wall time below timer resolution)",
                    w.name(),
                    c.label(),
                    r.committed
                ),
            }
            runs.push(r);
        }
    }
    let aggregate_kips = (total_wall > 0.0).then(|| total_committed as f64 / total_wall / 1e3);
    match aggregate_kips {
        Some(k) => println!("aggregate: {k:.1} simulated KIPS over {} runs", runs.len()),
        None => println!("aggregate: n/a (no run registered a wall time)"),
    }

    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"benchmark\": \"kernel\",");
    let _ = writeln!(
        j,
        "  \"unit\": \"simulated KIPS (committed kilo-instructions per host second)\","
    );
    let _ = writeln!(j, "  \"scale_factor\": {},", scale_factor());
    let _ = writeln!(j, "  \"timing_runs_min_of\": {repeat},");
    let _ = writeln!(j, "  \"history_bits\": {BASELINE_HISTORY_BITS},");
    let _ = writeln!(j, "  \"runs\": [");
    for (i, r) in runs.iter().enumerate() {
        let phases: Vec<String> = r
            .phases
            .iter()
            .map(|(n, s)| format!("\"{n}\": {s:.6}"))
            .collect();
        // Untimeable runs carry JSON null for wall_s/kips; consumers
        // skip those samples.
        let wall_s = r.wall_s.map_or("null".to_string(), |v| format!("{v:.6}"));
        let kips = r.kips.map_or("null".to_string(), |v| format!("{v:.1}"));
        let _ = writeln!(
            j,
            "    {{\"workload\": \"{}\", \"config\": \"{}\", \"committed\": {}, \"cycles\": {}, \"wall_s\": {}, \"kips\": {}, \"phases_s\": {{{}}}}}{}",
            r.workload.name(),
            json_escape(r.config.label()),
            r.committed,
            r.cycles,
            wall_s,
            kips,
            phases.join(", "),
            if i + 1 < runs.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "  ],");
    let agg = aggregate_kips.map_or("null".to_string(), |v| format!("{v:.1}"));
    let _ = writeln!(
        j,
        "  \"aggregate\": {{\"committed\": {total_committed}, \"wall_s\": {total_wall:.6}, \"kips\": {agg}}}{}",
        if baseline.is_some() { "," } else { "" }
    );
    if let Some(bpath) = &baseline {
        let old = std::fs::read_to_string(bpath)
            .unwrap_or_else(|e| cli::fail(format_args!("reading baseline {bpath}: {e}")));
        let old_kips = extract_aggregate_kips(&old)
            .unwrap_or_else(|| cli::fail(format_args!("no aggregate kips in {bpath}")));
        let new_kips = aggregate_kips.unwrap_or_else(|| {
            cli::fail("cannot compare against a baseline: no run registered a wall time")
        });
        let _ = writeln!(j, "  \"baseline_kips\": {old_kips:.1},");
        let _ = writeln!(j, "  \"speedup_vs_baseline\": {:.3}", new_kips / old_kips);
        println!(
            "speedup vs baseline ({old_kips:.1} KIPS): {:.2}x",
            new_kips / old_kips
        );
    }
    let _ = writeln!(j, "}}");
    std::fs::write(&out, j).unwrap_or_else(|e| cli::fail(format_args!("writing {out}: {e}")));
    println!("wrote {out}");
}

/// Pull `"kips": <x>` out of a previous report's `"aggregate"` object
/// (dependency-free parsing; the format is our own).
fn extract_aggregate_kips(text: &str) -> Option<f64> {
    let agg = text.split("\"aggregate\"").nth(1)?;
    let kips = agg.split("\"kips\":").nth(1)?;
    let end = kips.find(['}', ','])?;
    kips[..end].trim().parse().ok()
}
