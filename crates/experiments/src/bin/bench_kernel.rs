//! Kernel throughput benchmark: simulated KIPS over the `run_all`
//! workload set, exported as `BENCH_kernel.json`.
//!
//! ```sh
//! cargo run --release -p pp-experiments --bin bench_kernel -- \
//!     [--out BENCH_kernel.json] [--baseline OLD.json] [--repeat N]
//! cargo run --release -p pp-experiments --bin bench_kernel -- \
//!     --validate BENCH_kernel.json
//! ```
//!
//! Runs every workload of the paper's evaluation under the named
//! configurations sequentially (no worker threads, so wall-clock numbers
//! are not distorted by core contention), and **appends** a timestamped
//! JSON report to the `--out` file's `"trajectory"` array: per-run KIPS
//! plus the per-pipeline-phase host-time breakdown, and an aggregate
//! over the whole set. Earlier captures are preserved, so the file *is*
//! the perf history of the kernel; a pre-trajectory single-report file
//! is upgraded in place (the legacy report becomes the first, untimed,
//! entry). With `--baseline`, the **latest** aggregate of a previously
//! captured report is embedded and the speedup computed: capture once
//! before an optimization, re-run with `--baseline` after it.
//!
//! `--validate PATH` runs no benchmark: it parses `PATH` with the
//! built-in (dependency-free) JSON parser, checks the trajectory shape,
//! and exits nonzero if the file is malformed — the CI smoke that an
//! append never corrupts the committed history.
//!
//! Each (workload, config) pair is run **twice**: once clean — no
//! observer, no self-profiling, wall time measured around `run()` — for
//! the KIPS figure, and once with host self-profiling enabled for the
//! phase attribution. The phase timers read the clock twice per phase,
//! five phases per cycle, which adds a per-cycle constant that would
//! otherwise dilute (or mask) kernel speedups; keeping the timing run
//! un-instrumented makes KIPS reflect the simulator alone. Baselines
//! must be captured with the same methodology to be comparable.
//!
//! `--repeat N` runs the timing run N times per pair and keeps the
//! **minimum** wall time. Host-side noise (frequency scaling, other
//! tenants) only ever adds time, so min-of-N estimates the undisturbed
//! cost; on shared machines use `--repeat 3` for both the baseline
//! capture and the comparison run, back to back. Samples at or below
//! the host timer's resolution (zero elapsed seconds) carry no rate
//! information and are skipped rather than allowed to win the min; a
//! pair with no valid sample reports `null` for `wall_s`/`kips`.
//!
//! `--fast-forward` enables quiescent-cycle elision in the timing runs
//! (recorded as `"fast_forward"` in the entry, so captures are only
//! compared like-for-like); the attribution run stays un-elided — the
//! phase timers observe every cycle by design.
//!
//! Honours `PP_SCALE` like every other binary; the scale in use is
//! recorded in the report so baselines are only compared at like scale.

use std::fmt::Write as _;

use pp_experiments::cli;
use pp_experiments::experiments::BASELINE_HISTORY_BITS;
use pp_experiments::{named_config, scale_factor, scaled, Config};
use pp_workloads::Workload;

use pp_core::Simulator;

/// The configurations benchmarked, in order. Monopath exercises the
/// single-path fast path, SEE/JRS the divergence machinery, dual-path
/// the bounded variant.
const BENCH_CONFIGS: [Config; 3] = [Config::Monopath, Config::SeeJrs, Config::DualJrs];

struct RunReport {
    workload: Workload,
    config: Config,
    committed: u64,
    cycles: u64,
    /// Minimum wall time over the repeat runs, counting only samples
    /// above the host timer's resolution; `None` if no run registered.
    wall_s: Option<f64>,
    /// Simulated KIPS from the minimum valid wall time.
    kips: Option<f64>,
    phases: Vec<(&'static str, f64)>,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn run_one(w: Workload, c: Config, repeat: usize, fast_forward: bool) -> RunReport {
    let mut cfg = named_config(c, BASELINE_HISTORY_BITS);
    if fast_forward {
        cfg = cfg.with_fast_forward();
    }
    let program = w.build(scaled(w));

    // Timing runs: nothing attached, wall clock measured from outside,
    // minimum over `repeat` identical runs. A sample at or below the
    // timer's resolution reads as zero seconds — it carries no rate
    // information, and letting it win the min would turn KIPS into
    // infinity/garbage — so sub-resolution samples are skipped.
    let mut wall: Option<std::time::Duration> = None;
    let mut stats = None;
    for _ in 0..repeat {
        let mut sim = Simulator::new(&program, cfg.clone());
        let start = std::time::Instant::now();
        let s = sim.run();
        let elapsed = start.elapsed();
        if elapsed > std::time::Duration::ZERO {
            wall = Some(wall.map_or(elapsed, |w| w.min(elapsed)));
        }
        assert!(!s.hit_cycle_limit, "{w} hit the cycle limit");
        if let Some(prev) = &stats {
            assert_eq!(&s, prev, "{w} repeat run diverged");
        }
        stats = Some(s);
    }
    let stats = stats.expect("repeat must be nonzero");

    // Attribution run: same simulation, phase timers on.
    let mut prof_sim = Simulator::new(&program, cfg);
    prof_sim.enable_self_profiling();
    let prof_stats = prof_sim.run();
    assert_eq!(
        prof_stats.committed_instructions, stats.committed_instructions,
        "self-profiling must not perturb the simulation"
    );
    let host = prof_sim.host_profile().expect("profiling enabled").clone();

    RunReport {
        workload: w,
        config: c,
        committed: stats.committed_instructions,
        cycles: stats.cycles,
        wall_s: wall.map(|w| w.as_secs_f64()),
        kips: wall.map(|w| stats.committed_instructions as f64 / w.as_secs_f64() / 1e3),
        phases: host
            .phases()
            .iter()
            .map(|(n, d)| (*n, d.as_secs_f64()))
            .collect(),
    }
}

fn main() {
    let mut out = String::from("BENCH_kernel.json");
    let mut baseline: Option<String> = None;
    let mut repeat = 1usize;
    let mut validate: Option<String> = None;
    let mut fast_forward = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = cli::require_value(&mut args, "--out", "a path"),
            "--baseline" => baseline = Some(cli::require_value(&mut args, "--baseline", "a path")),
            "--repeat" => {
                repeat = cli::parse_next(&mut args, "--repeat", "a positive integer");
                if repeat == 0 {
                    cli::usage_error("--repeat count must be a positive integer");
                }
            }
            "--validate" => validate = Some(cli::require_value(&mut args, "--validate", "a path")),
            "--fast-forward" => fast_forward = true,
            other => cli::usage_error(format_args!(
                "unknown argument {other:?} (expected --out, --baseline, --repeat, \
                 --fast-forward, or --validate)"
            )),
        }
    }

    if let Some(path) = validate {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| cli::fail(format_args!("reading {path}: {e}")));
        match validate_report(&text) {
            Ok(summary) => println!("{path}: OK — {summary}"),
            Err(e) => cli::fail(format_args!("{path}: INVALID — {e}")),
        }
        return;
    }

    let mut runs = Vec::new();
    // Aggregate over runs that registered a valid (above-resolution)
    // wall time; untimeable runs are excluded from the rate, not
    // averaged in as zero.
    let mut total_committed = 0u64;
    let mut total_wall = 0.0f64;
    for w in Workload::ALL {
        for c in BENCH_CONFIGS {
            let r = run_one(w, c, repeat, fast_forward);
            match (r.kips, r.wall_s) {
                (Some(kips), Some(wall_s)) => {
                    println!(
                        "{:>9} × {:<24} {:>8.1} KIPS  ({} committed in {:.2}s)",
                        w.name(),
                        c.label(),
                        kips,
                        r.committed,
                        wall_s
                    );
                    total_committed += r.committed;
                    total_wall += wall_s;
                }
                _ => println!(
                    "{:>9} × {:<24}      n/a  ({} committed; wall time below timer resolution)",
                    w.name(),
                    c.label(),
                    r.committed
                ),
            }
            runs.push(r);
        }
    }
    let aggregate_kips = (total_wall > 0.0).then(|| total_committed as f64 / total_wall / 1e3);
    match aggregate_kips {
        Some(k) => println!("aggregate: {k:.1} simulated KIPS over {} runs", runs.len()),
        None => println!("aggregate: n/a (no run registered a wall time)"),
    }

    // Wall-clock capture time, so the trajectory orders and dates its
    // entries (host clock; never a simulation input).
    let timestamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());

    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"benchmark\": \"kernel\",");
    let _ = writeln!(j, "  \"timestamp_unix_s\": {timestamp},");
    let _ = writeln!(
        j,
        "  \"unit\": \"simulated KIPS (committed kilo-instructions per host second)\","
    );
    let _ = writeln!(j, "  \"scale_factor\": {},", scale_factor());
    let _ = writeln!(j, "  \"timing_runs_min_of\": {repeat},");
    let _ = writeln!(j, "  \"fast_forward\": {fast_forward},");
    let _ = writeln!(j, "  \"history_bits\": {BASELINE_HISTORY_BITS},");
    let _ = writeln!(j, "  \"runs\": [");
    for (i, r) in runs.iter().enumerate() {
        let phases: Vec<String> = r
            .phases
            .iter()
            .map(|(n, s)| format!("\"{n}\": {s:.6}"))
            .collect();
        // Untimeable runs carry JSON null for wall_s/kips; consumers
        // skip those samples.
        let wall_s = r.wall_s.map_or("null".to_string(), |v| format!("{v:.6}"));
        let kips = r.kips.map_or("null".to_string(), |v| format!("{v:.1}"));
        let _ = writeln!(
            j,
            "    {{\"workload\": \"{}\", \"config\": \"{}\", \"committed\": {}, \"cycles\": {}, \"wall_s\": {}, \"kips\": {}, \"phases_s\": {{{}}}}}{}",
            r.workload.name(),
            json_escape(r.config.label()),
            r.committed,
            r.cycles,
            wall_s,
            kips,
            phases.join(", "),
            if i + 1 < runs.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "  ],");
    let agg = aggregate_kips.map_or("null".to_string(), |v| format!("{v:.1}"));
    let _ = writeln!(
        j,
        "  \"aggregate\": {{\"committed\": {total_committed}, \"wall_s\": {total_wall:.6}, \"kips\": {agg}}}{}",
        if baseline.is_some() { "," } else { "" }
    );
    if let Some(bpath) = &baseline {
        let old = std::fs::read_to_string(bpath)
            .unwrap_or_else(|e| cli::fail(format_args!("reading baseline {bpath}: {e}")));
        let old_kips = extract_aggregate_kips(&old)
            .unwrap_or_else(|| cli::fail(format_args!("no aggregate kips in {bpath}")));
        let new_kips = aggregate_kips.unwrap_or_else(|| {
            cli::fail("cannot compare against a baseline: no run registered a wall time")
        });
        let _ = writeln!(j, "  \"baseline_kips\": {old_kips:.1},");
        let _ = writeln!(j, "  \"speedup_vs_baseline\": {:.3}", new_kips / old_kips);
        println!(
            "speedup vs baseline ({old_kips:.1} KIPS): {:.2}x",
            new_kips / old_kips
        );
    }
    let _ = writeln!(j, "}}");

    let existing = std::fs::read_to_string(&out).ok();
    let appended = existing.is_some();
    let text = append_trajectory(existing, &j);
    if let Err(e) = validate_report(&text) {
        cli::fail(format_args!(
            "refusing to write {out}: appended report fails validation — {e}"
        ));
    }
    std::fs::write(&out, text).unwrap_or_else(|e| cli::fail(format_args!("writing {out}: {e}")));
    println!("{} {out}", if appended { "appended to" } else { "wrote" });
}

/// Opening of a trajectory file, up to (and including) the start of the
/// entry array.
const TRAJECTORY_HEADER: &str =
    "{\n  \"benchmark\": \"kernel\",\n  \"schema\": \"trajectory-v1\",\n  \"trajectory\": [\n";

/// Splice `entry` (one complete report object) into the trajectory in
/// `existing`, preserving prior entries. A pre-trajectory file — the
/// old schema, where the report object *was* the file — is upgraded in
/// place: the legacy report becomes the first entry.
fn append_trajectory(existing: Option<String>, entry: &str) -> String {
    let entry = entry.trim_end();
    match existing {
        Some(text) if text.contains("\"trajectory\"") => {
            let cut = text
                .rfind("  ]")
                .unwrap_or_else(|| cli::fail("existing trajectory file has no array close"));
            format!(
                "{},\n{entry}\n{}",
                text[..cut].trim_end(),
                &text[cut..].trim_start_matches(['\r', '\n'])
            )
        }
        Some(text) if !text.trim().is_empty() => {
            format!(
                "{TRAJECTORY_HEADER}{},\n{entry}\n  ]\n}}\n",
                text.trim_end()
            )
        }
        _ => format!("{TRAJECTORY_HEADER}{entry}\n  ]\n}}\n"),
    }
}

/// Check that `text` parses as JSON and has the shape consumers expect:
/// either a `trajectory-v1` file (non-empty `"trajectory"` array of
/// report objects, each with a `"runs"` array) or a legacy single
/// report. Returns a one-line summary.
fn validate_report(text: &str) -> Result<String, String> {
    let root = json::parse(text)?;
    let obj = root.as_object().ok_or("top level is not an object")?;
    if let Some(traj) = json::get(obj, "trajectory") {
        let entries = traj.as_array().ok_or("\"trajectory\" is not an array")?;
        if entries.is_empty() {
            return Err("\"trajectory\" is empty".into());
        }
        for (i, e) in entries.iter().enumerate() {
            let eo = e
                .as_object()
                .ok_or_else(|| format!("trajectory[{i}] is not an object"))?;
            let runs = json::get(eo, "runs")
                .and_then(json::Value::as_array)
                .ok_or_else(|| format!("trajectory[{i}] has no \"runs\" array"))?;
            if runs.is_empty() {
                return Err(format!("trajectory[{i}] has zero runs"));
            }
        }
        Ok(format!(
            "trajectory of {} report(s), latest with {} runs",
            entries.len(),
            json::get(
                entries.last().and_then(json::Value::as_object).unwrap(),
                "runs"
            )
            .and_then(json::Value::as_array)
            .map_or(0, Vec::len),
        ))
    } else {
        let runs = json::get(obj, "runs")
            .and_then(json::Value::as_array)
            .ok_or("neither \"trajectory\" nor \"runs\" present")?;
        if runs.is_empty() {
            return Err("legacy report has zero runs".into());
        }
        Ok(format!("legacy single report with {} runs", runs.len()))
    }
}

/// Pull `"kips": <x>` out of the **last** `"aggregate"` object in a
/// previous report — in a trajectory file that is the newest capture
/// (dependency-free scan; the format is our own).
fn extract_aggregate_kips(text: &str) -> Option<f64> {
    let agg = &text[text.rfind("\"aggregate\"")?..];
    let kips = agg.split("\"kips\":").nth(1)?;
    let end = kips.find(['}', ','])?;
    kips[..end].trim().parse().ok()
}

/// A minimal recursive-descent JSON parser — just enough to validate
/// the benchmark trajectory without a serialization dependency. Accepts
/// standard JSON; numbers are kept as `f64`.
mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Array(Vec<Value>),
        Object(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_array(&self) -> Option<&Vec<Value>> {
            match self {
                Value::Array(a) => Some(a),
                _ => None,
            }
        }
        pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
            match self {
                Value::Object(o) => Some(o),
                _ => None,
            }
        }
    }

    /// First value bound to `key` in an object's entry list.
    pub fn get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Parse `text` as a single JSON document.
    pub fn parse(text: &str) -> Result<Value, String> {
        let b = text.as_bytes();
        let mut pos = 0;
        let v = value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {pos}", c as char))
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => Ok(Value::Str(string(b, pos)?)),
            Some(b't') => literal(b, pos, "true", Value::Bool(true)),
            Some(b'f') => literal(b, pos, "false", Value::Bool(false)),
            Some(b'n') => literal(b, pos, "null", Value::Null),
            Some(_) => number(b, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {pos}"))
        }
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = Vec::new();
        while *pos < b.len() {
            match b[*pos] {
                b'"' => {
                    *pos += 1;
                    return String::from_utf8(out).map_err(|_| "bad UTF-8 in string".into());
                }
                b'\\' => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'u') => {
                            // Validate the four hex digits; decode as a
                            // replacement-free escape (the trajectory
                            // never emits non-BMP escapes).
                            let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                            let cp = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            out.extend(
                                char::from_u32(cp)
                                    .unwrap_or('\u{fffd}')
                                    .to_string()
                                    .as_bytes(),
                            );
                            *pos += 5;
                        }
                        Some(&c) => {
                            out.push(match c {
                                b'n' => b'\n',
                                b't' => b'\t',
                                b'r' => b'\r',
                                other => other,
                            });
                            *pos += 1;
                        }
                        None => return Err("truncated escape".into()),
                    }
                }
                c => {
                    out.push(c);
                    *pos += 1;
                }
            }
        }
        Err("unterminated string".into())
    }

    fn array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {pos}")),
            }
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut entries = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            skip_ws(b, pos);
            let k = string(b, pos)?;
            skip_ws(b, pos);
            expect(b, pos, b':')?;
            entries.push((k, value(b, pos)?));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ENTRY: &str = "{\n  \"benchmark\": \"kernel\",\n  \"timestamp_unix_s\": 1,\n  \"runs\": [\n    {\"workload\": \"compress\", \"kips\": 5.0}\n  ],\n  \"aggregate\": {\"committed\": 10, \"wall_s\": 1.0, \"kips\": 5.0}\n}\n";

    #[test]
    fn fresh_file_becomes_a_one_entry_trajectory() {
        let text = append_trajectory(None, ENTRY);
        let summary = validate_report(&text).unwrap();
        assert!(summary.contains("1 report(s)"), "{summary}");
        assert_eq!(extract_aggregate_kips(&text), Some(5.0));
    }

    #[test]
    fn appending_preserves_prior_entries() {
        let one = append_trajectory(None, ENTRY);
        let newer = ENTRY.replace("\"kips\": 5.0", "\"kips\": 7.5");
        let two = append_trajectory(Some(one), &newer);
        let summary = validate_report(&two).unwrap();
        assert!(summary.contains("2 report(s)"), "{summary}");
        // --baseline reads the *latest* capture's aggregate.
        assert_eq!(extract_aggregate_kips(&two), Some(7.5));
        let three = append_trajectory(Some(two), ENTRY);
        assert!(validate_report(&three).unwrap().contains("3 report(s)"));
    }

    #[test]
    fn legacy_single_report_is_upgraded_in_place() {
        assert!(validate_report(ENTRY).unwrap().contains("legacy"));
        let upgraded = append_trajectory(Some(ENTRY.to_string()), ENTRY);
        let summary = validate_report(&upgraded).unwrap();
        assert!(summary.contains("2 report(s)"), "{summary}");
    }

    #[test]
    fn validation_rejects_corruption() {
        let text = append_trajectory(None, ENTRY);
        assert!(validate_report(&text[..text.len() - 4]).is_err());
        assert!(validate_report("{\"trajectory\": []}").is_err());
        assert!(validate_report("{\"benchmark\": \"kernel\"}").is_err());
        assert!(validate_report("[1, 2").is_err());
    }

    #[test]
    fn committed_trajectory_round_trips_an_append() {
        // The writer self-validates before touching disk, but nothing
        // else pins the read-back path against the *committed* history:
        // append a capture to an in-memory copy of the real
        // BENCH_kernel.json, re-validate, and check the entry count and
        // timestamp monotonicity survive the round trip.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernel.json");
        let committed = std::fs::read_to_string(path).expect("committed BENCH_kernel.json");
        let before = trajectory_timestamps(&committed);
        assert!(!before.is_empty(), "committed trajectory is empty");

        let newest = ENTRY.replace(
            "\"timestamp_unix_s\": 1",
            "\"timestamp_unix_s\": 99999999999",
        );
        let appended = append_trajectory(Some(committed), &newest);
        let summary = validate_report(&appended).unwrap();
        assert!(
            summary.contains(&format!("{} report(s)", before.len() + 1)),
            "append did not grow the trajectory by one: {summary}"
        );

        let after = trajectory_timestamps(&appended);
        assert_eq!(
            &after[..before.len()],
            &before[..],
            "prior entries perturbed"
        );
        let stamped: Vec<f64> = after.iter().filter_map(|t| *t).collect();
        assert!(
            stamped.windows(2).all(|w| w[0] <= w[1]),
            "timestamps not monotone after append: {after:?}"
        );
    }

    /// `timestamp_unix_s` of each trajectory entry, in file order.
    /// `None` for the untimed legacy entry a pre-trajectory file
    /// upgrades into.
    fn trajectory_timestamps(text: &str) -> Vec<Option<f64>> {
        let root = json::parse(text).unwrap();
        let obj = root.as_object().unwrap();
        json::get(obj, "trajectory")
            .and_then(json::Value::as_array)
            .unwrap()
            .iter()
            .map(
                |e| match json::get(e.as_object().unwrap(), "timestamp_unix_s") {
                    Some(&json::Value::Num(t)) => Some(t),
                    None => None,
                    other => panic!("non-numeric timestamp: {other:?}"),
                },
            )
            .collect()
    }

    #[test]
    fn json_parser_handles_the_grammar() {
        let v = json::parse(" {\"a\": [1, -2.5e1, \"x\\\"y\\u0041\", true, null], \"b\": {}} ")
            .unwrap();
        let o = v.as_object().unwrap();
        let a = json::get(o, "a").unwrap().as_array().unwrap();
        assert_eq!(a.len(), 5);
        assert_eq!(a[1], json::Value::Num(-25.0));
        assert_eq!(a[2], json::Value::Str("x\"yA".into()));
        assert!(json::get(o, "b").unwrap().as_object().unwrap().is_empty());
        assert!(json::parse("{\"a\": 1,}").is_err());
        assert!(json::parse("{} junk").is_err());
    }
}
