//! `work` — a pp-serve worker over the experiment registry.
//!
//! ```sh
//! work --addr 127.0.0.1:7117
//! work --addr sim-host:7117 --client rack3-07
//! ```
//!
//! Connects to a `serve` daemon, rebuilds the advertised grid locally
//! from the registry names in the welcome frame, proves it identical
//! (cell count + grid signature — catching `PP_SCALE` or behavior-
//! revision skew before any work is accepted), then loops
//! lease → simulate → result until the server reports the grid done.
//! Cell execution is the standard [`pp_sweep::SweepCell::run`] path,
//! flight recorder included: a panicking cell ships the last recorded
//! cycles of machine history back to the daemon in the result message.
//!
//! Exits 0 after an orderly `done`, 1 on connection loss, protocol
//! fault, grid skew, or an admission queue that stays busy past the
//! retry budget.

use pp_experiments::cli;
use pp_experiments::suite;
use pp_serve::{run_worker, WorkerConfig};

const USAGE: &str = "usage: work --addr HOST:PORT [--client NAME]";

fn main() {
    let mut addr: Option<String> = None;
    let mut cfg = WorkerConfig::default();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let (flag, inline) = match a.split_once('=') {
            Some((f, v)) if f.starts_with("--") => (f.to_string(), Some(v.to_string())),
            _ => (a.clone(), None),
        };
        let value =
            |flag: &str, inline: Option<String>, it: &mut dyn Iterator<Item = String>| match inline
                .or_else(|| it.next())
            {
                Some(v) => v,
                None => cli::usage_error(format_args!("{flag} needs a value")),
            };
        match flag.as_str() {
            "--addr" => addr = Some(value("--addr", inline, &mut it)),
            "--client" => cfg.client = value("--client", inline, &mut it),
            other => cli::usage_error(format_args!("unknown argument: {other}\n{USAGE}")),
        }
    }
    let Some(addr) = addr else {
        cli::usage_error(USAGE);
    };
    match run_worker(&addr, &cfg, |name| suite::find(name).map(|e| e.grid())) {
        Ok(report) => {
            println!(
                "[pp-work] {}: {} simulated, {} redundant, {} failed",
                cfg.client, report.simulated, report.redundant, report.failed
            );
        }
        Err(e) => cli::fail(e),
    }
}
