//! The paper's tables and figures as programmatic experiments.
//!
//! Each function runs the required simulations (honouring `PP_SCALE`) and
//! returns structured results; the binaries format them, the integration
//! tests assert the paper's qualitative claims on them.

use pp_core::{FuConfig, SimConfig, SimStats};
use pp_workloads::Workload;

use crate::configs::{named_config, Config, CONFIG_ORDER};
use crate::harness::{
    geometric_mean, harmonic_mean, run_matrix, run_workload, scaled, speedup_frac,
};

/// Baseline gshare history bits (16 k counters).
pub const BASELINE_HISTORY_BITS: u32 = 14;

// ---------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------

/// One row of Table 1: workload characteristics.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Which workload.
    pub workload: Workload,
    /// Dynamic instruction count (functional).
    pub instructions: u64,
    /// Dynamic conditional branches.
    pub cond_branches: u64,
    /// Fraction of taken branches.
    pub taken_rate: f64,
    /// gshare-14 misprediction rate on the monopath machine.
    pub mispredict_rate: f64,
}

/// Regenerate Table 1: per-workload dynamic size and gshare-14
/// misprediction rate.
pub fn table1() -> Vec<Table1Row> {
    let cfg = named_config(Config::Monopath, BASELINE_HISTORY_BITS);
    let results = run_matrix(&Workload::ALL, std::slice::from_ref(&cfg));
    Workload::ALL
        .iter()
        .zip(results)
        .map(|(&w, r)| {
            let func = w.characterize(scaled(w));
            Table1Row {
                workload: w,
                instructions: func.instructions,
                cond_branches: func.cond_branches,
                taken_rate: func.taken_branches as f64 / func.cond_branches.max(1) as f64,
                mispredict_rate: r.stats.mispredict_rate(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Fig. 8 + §5.1 + §5.2
// ---------------------------------------------------------------------

/// The full baseline comparison: per-workload stats for all six named
/// configurations plus harmonic-mean IPCs.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// `cells[workload][config]` in `Workload::ALL` × [`CONFIG_ORDER`]
    /// order.
    pub cells: Vec<Vec<SimStats>>,
    /// Harmonic-mean IPC per configuration, in [`CONFIG_ORDER`] order.
    pub hmean_ipc: Vec<f64>,
}

impl Fig8 {
    /// IPC of one cell.
    pub fn ipc(&self, workload: usize, config: Config) -> f64 {
        self.cells[workload][config_index(config)].ipc()
    }

    /// Harmonic-mean IPC of one configuration.
    pub fn hmean(&self, config: Config) -> f64 {
        self.hmean_ipc[config_index(config)]
    }

    /// Mean relative improvement of `a` over `b`.
    pub fn speedup(&self, a: Config, b: Config) -> f64 {
        self.hmean(a) / self.hmean(b)
    }
}

/// Index of a configuration within [`CONFIG_ORDER`].
pub fn config_index(config: Config) -> usize {
    CONFIG_ORDER
        .iter()
        .position(|c| *c == config)
        .expect("config in order")
}

/// Run the Fig. 8 baseline comparison (also the data source for §5.1 and
/// §5.2 analyses).
pub fn fig8() -> Fig8 {
    let configs: Vec<SimConfig> = CONFIG_ORDER
        .iter()
        .map(|&c| named_config(c, BASELINE_HISTORY_BITS))
        .collect();
    let results = run_matrix(&Workload::ALL, &configs);
    let mut cells: Vec<Vec<SimStats>> = Vec::with_capacity(Workload::ALL.len());
    for wi in 0..Workload::ALL.len() {
        let row: Vec<SimStats> = (0..configs.len())
            .map(|ci| results[wi * configs.len() + ci].stats.clone())
            .collect();
        cells.push(row);
    }
    let hmean_ipc = (0..configs.len())
        .map(|ci| {
            let ipcs: Vec<f64> = cells.iter().map(|row| row[ci].ipc()).collect();
            harmonic_mean(&ipcs)
        })
        .collect();
    Fig8 { cells, hmean_ipc }
}

// ---------------------------------------------------------------------
// Scalability sweeps (Figs. 9–12)
// ---------------------------------------------------------------------

/// The four series plotted in every scalability figure.
pub const SWEEP_SERIES: [Config; 4] = [
    Config::Oracle,
    Config::Monopath,
    Config::SeeOracle,
    Config::SeeJrs,
];

/// The history-bit points Fig. 9 sweeps.
pub const FIG9_BITS: [u32; 7] = [10, 11, 12, 13, 14, 15, 16];
/// The window sizes Fig. 10 sweeps.
pub const FIG10_WINDOWS: [usize; 5] = [64, 128, 256, 512, 1024];
/// The per-type FU counts Fig. 11 sweeps.
pub const FIG11_FUS: [usize; 4] = [1, 2, 3, 4];
/// The pipeline depths Fig. 12 sweeps.
pub const FIG12_DEPTHS: [usize; 5] = [6, 7, 8, 9, 10];

/// The machine configuration of one Fig. 9 point: `series` at
/// `history_bits` of predictor history.
pub fn fig9_config(series: Config, history_bits: u32) -> SimConfig {
    named_config(series, history_bits)
}

/// Total predictor state (gshare PHT + JRS table) in bytes at one
/// Fig. 9 point — the paper's equal-area x-axis.
pub fn fig9_state_bytes(history_bits: u32) -> usize {
    // gshare: 2 bits per counter; JRS (the SEE configs): +1 bit per
    // counter. Report the SEE-system total, as the paper plots.
    let counters = 1usize << history_bits;
    counters * 2 / 8 + counters / 8
}

/// The machine configuration of one Fig. 10 point: `series` with a
/// `window`-entry instruction window.
pub fn fig10_config(series: Config, window: usize) -> SimConfig {
    let mut cfg = named_config(series, BASELINE_HISTORY_BITS).with_window_size(window);
    // Deep windows hold more in-flight branches.
    cfg.ctx_positions = pp_ctx::MAX_POSITIONS.min((window / 3).max(16));
    cfg
}

/// The machine configuration of one Fig. 11 point: `series` with `n`
/// functional units of each type.
pub fn fig11_config(series: Config, n: usize) -> SimConfig {
    named_config(series, BASELINE_HISTORY_BITS).with_fus(FuConfig::uniform(n))
}

/// The machine configuration of one Fig. 12 point: `series` at `depth`
/// pipeline stages.
pub fn fig12_config(series: Config, depth: usize) -> SimConfig {
    named_config(series, BASELINE_HISTORY_BITS).with_pipeline_depth(depth)
}

/// One point of a scalability sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The swept parameter's value (history bits, window entries, FU
    /// count, or pipeline stages).
    pub x: u64,
    /// Total predictor state in bytes (Fig. 9's equal-area x-axis);
    /// zero for the other sweeps.
    pub state_bytes: usize,
    /// Harmonic-mean IPC per series, in [`SWEEP_SERIES`] order.
    pub hmean_ipc: Vec<f64>,
    /// Geometric-mean misprediction rate of the monopath run.
    pub mispredict_rate: f64,
}

fn sweep(points: &[u64], make: impl Fn(Config, u64) -> SimConfig) -> Vec<SweepPoint> {
    points
        .iter()
        .map(|&x| {
            let configs: Vec<SimConfig> = SWEEP_SERIES.iter().map(|&c| make(c, x)).collect();
            let results = run_matrix(&Workload::ALL, &configs);
            let hmean_ipc: Vec<f64> = (0..configs.len())
                .map(|ci| {
                    let ipcs: Vec<f64> = (0..Workload::ALL.len())
                        .map(|wi| results[wi * configs.len() + ci].stats.ipc())
                        .collect();
                    harmonic_mean(&ipcs)
                })
                .collect();
            // Geometric mean of the monopath misprediction rate.
            let mono = 1; // index of Config::Monopath in SWEEP_SERIES
            let rates: Vec<f64> = (0..Workload::ALL.len())
                .map(|wi| {
                    results[wi * configs.len() + mono]
                        .stats
                        .mispredict_rate()
                        .max(1e-6)
                })
                .collect();
            let gmean = geometric_mean(&rates);
            SweepPoint {
                x,
                state_bytes: 0,
                hmean_ipc,
                mispredict_rate: gmean,
            }
        })
        .collect()
}

/// Fig. 9: branch predictor size sweep (`history_bits` per point). The
/// returned `state_bytes` counts all predictor state in the system
/// (gshare PHT + JRS table where present) for the equal-area comparison.
pub fn fig9(history_bits: &[u32]) -> Vec<SweepPoint> {
    let points: Vec<u64> = history_bits.iter().map(|&b| b as u64).collect();
    let mut out = sweep(&points, |c, bits| fig9_config(c, bits as u32));
    for p in &mut out {
        p.state_bytes = fig9_state_bytes(p.x as u32);
    }
    out
}

/// Fig. 10: instruction window size sweep.
pub fn fig10(window_sizes: &[usize]) -> Vec<SweepPoint> {
    let points: Vec<u64> = window_sizes.iter().map(|&w| w as u64).collect();
    sweep(&points, |c, w| fig10_config(c, w as usize))
}

/// Fig. 11: functional unit configuration sweep (`n` units of each type).
pub fn fig11(fu_counts: &[usize]) -> Vec<SweepPoint> {
    let points: Vec<u64> = fu_counts.iter().map(|&n| n as u64).collect();
    sweep(&points, |c, n| fig11_config(c, n as usize))
}

/// Fig. 12: pipeline depth sweep (total stages).
pub fn fig12(depths: &[usize]) -> Vec<SweepPoint> {
    let points: Vec<u64> = depths.iter().map(|&d| d as u64).collect();
    sweep(&points, |c, d| fig12_config(c, d as usize))
}

// ---------------------------------------------------------------------
// §5.1 analysis
// ---------------------------------------------------------------------

/// Per-workload §5.1 analysis derived from the Fig. 8 data.
#[derive(Debug, Clone)]
pub struct Sec51Row {
    /// Which workload.
    pub workload: Workload,
    /// Monopath fetched/committed ratio (paper mean: 1.86).
    pub mono_fetch_ratio: f64,
    /// JRS PVN on the SEE run (paper: m88ksim ≈ 16%, others > 40%).
    pub pvn: f64,
    /// Relative change in useless instructions, SEE vs. monopath
    /// (paper: −15% mean, +29% for m88ksim).
    pub useless_delta: f64,
    /// IPC improvement of SEE/JRS over monopath.
    pub see_speedup: f64,
}

/// Compute the §5.1 analysis rows from Fig. 8 data.
pub fn sec51(fig8: &Fig8) -> Vec<Sec51Row> {
    let mono = config_index(Config::Monopath);
    let see = config_index(Config::SeeJrs);
    Workload::ALL
        .iter()
        .enumerate()
        .map(|(wi, &w)| {
            let m = &fig8.cells[wi][mono];
            let s = &fig8.cells[wi][see];
            Sec51Row {
                workload: w,
                mono_fetch_ratio: m.fetched_per_committed(),
                pvn: s.pvn(),
                useless_delta: s.useless_instructions() as f64
                    / m.useless_instructions().max(1) as f64
                    - 1.0,
                see_speedup: speedup_frac(s.ipc(), m.ipc()),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// §5.2 analysis
// ---------------------------------------------------------------------

/// The §5.2 dual-path comparison derived from Fig. 8 data.
#[derive(Debug, Clone)]
pub struct Sec52 {
    /// Fraction of oracle-SEE's improvement that oracle-dual-path
    /// achieves (paper: ≈58%).
    pub oracle_dual_fraction: f64,
    /// Fraction of JRS-SEE's improvement that JRS-dual-path achieves
    /// (paper: ≈66%).
    pub jrs_dual_fraction: f64,
    /// Mean live paths under SEE/JRS (paper: ≈2.9).
    pub mean_paths_see: f64,
    /// Fraction of cycles with ≤ 3 live paths under SEE/JRS (paper: ≈75%).
    pub paths_le3_see: f64,
}

/// Compute the §5.2 dual-path analysis from Fig. 8 data.
pub fn sec52(fig8: &Fig8) -> Sec52 {
    let gain = |c: Config| fig8.hmean(c) - fig8.hmean(Config::Monopath);
    let frac = |dual: Config, see: Config| {
        let g = gain(see);
        if g.abs() < 1e-9 {
            0.0
        } else {
            gain(dual) / g
        }
    };
    let see = config_index(Config::SeeJrs);
    let mean_paths: Vec<f64> = fig8
        .cells
        .iter()
        .map(|row| row[see].mean_active_paths())
        .collect();
    let le3: Vec<f64> = fig8
        .cells
        .iter()
        .map(|row| row[see].paths_at_most(3))
        .collect();
    Sec52 {
        oracle_dual_fraction: frac(Config::DualOracle, Config::SeeOracle),
        jrs_dual_fraction: frac(Config::DualJrs, Config::SeeJrs),
        mean_paths_see: mean_paths.iter().sum::<f64>() / mean_paths.len() as f64,
        paths_le3_see: le3.iter().sum::<f64>() / le3.len() as f64,
    }
}

/// Run one workload under one named configuration at baseline history
/// bits (convenience for examples and tests).
pub fn run_named(workload: Workload, config: Config) -> SimStats {
    run_workload(workload, &named_config(config, BASELINE_HISTORY_BITS))
}
