//! # pp-experiments — the paper's evaluation, regenerated
//!
//! One [`suite::Experiment`] per table/figure of the evaluation section
//! of *Selective Eager Execution on the PolyPath Architecture* (ISCA
//! 1998), plus the shared machinery: the six named machine
//! configurations of Fig. 8, the `pp-sweep`-backed experiment registry
//! (cached, work-stealing, typed per-cell failures — see DESIGN.md
//! §3e), harmonic means, and text-table formatting.
//!
//! The front door is the `sweep` binary (`sweep list`, `sweep run
//! fig9`, `sweep run all`). The historical per-figure binaries below
//! remain as thin shims over the same registry and accept the same
//! unified flags (`--workers`, `--out-dir`, `--cache-dir`, `--no-cache`,
//! `--resume`, `--max-cells`, `--quiet`, `--telemetry-out`,
//! `--telemetry-sample-every`).
//!
//! Binaries (`cargo run --release -p pp-experiments --bin <name>`):
//!
//! | binary | regenerates |
//! |--------|-------------|
//! | `table1` | Table 1 — benchmark characteristics |
//! | `fig8_baseline` | Fig. 8 — baseline IPC, all six configurations |
//! | `sec51_analysis` | §5.1 — fetch ratios, useless instructions, PVN |
//! | `sec52_dualpath` | §5.2 — dual-path fractions, path utilization |
//! | `fig9_predictor_size` | Fig. 9 — IPC vs. predictor state |
//! | `fig10_window_size` | Fig. 10 — IPC vs. window size |
//! | `fig11_fu_config` | Fig. 11 — IPC vs. functional unit count |
//! | `fig12_pipeline_depth` | Fig. 12 — IPC vs. pipeline depth |
//! | `ablations` | five extension studies (fetch policy, resolution timing, adaptive confidence, predictors, cache) |
//! | `input_sensitivity` | Fig. 8 headline across three input data sets |
//! | `workload_profile` | per-workload hot-loop profiles |
//! | `calibrate` | workload calibration table |
//! | `run_all` | everything above, written as text + CSV |
//!
//! Every binary honours `PP_SCALE` (a float multiplier on workload scale,
//! default 1.0) so quick runs and full runs use the same code path.

mod configs;
mod harness;
mod plot;
mod table;

pub mod cli;
pub mod experiments;
pub mod suite;

pub use configs::{named_config, Config, CONFIG_ORDER};
pub use harness::{
    geometric_mean, harmonic_mean, parallelism, run_matrix, run_matrix_with_workers, run_workload,
    run_workload_telemetered, scale_factor, scaled, speedup_frac, speedup_pct, MatrixResult,
    TelemetryOpts, TelemetryWriteError,
};
pub use plot::Chart;
pub use table::Table;
