//! Saturating counters, the storage element of all table-based predictors.

/// An n-bit saturating counter (1 ≤ n ≤ 8), stored in a `u8`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SaturatingCounter {
    value: u8,
    max: u8,
}

impl SaturatingCounter {
    /// Counter of `bits` width initialized to `initial`.
    ///
    /// # Panics
    /// Panics if `bits` is 0 or greater than 8, or `initial` exceeds the
    /// maximum representable value.
    pub fn new(bits: u32, initial: u8) -> Self {
        assert!((1..=8).contains(&bits), "counter width must be 1..=8 bits");
        let max = if bits == 8 {
            u8::MAX
        } else {
            (1u8 << bits) - 1
        };
        assert!(initial <= max, "initial value exceeds counter range");
        SaturatingCounter {
            value: initial,
            max,
        }
    }

    /// Current value.
    pub fn value(self) -> u8 {
        self.value
    }

    /// Largest representable value.
    pub fn max(self) -> u8 {
        self.max
    }

    /// Increment, saturating at the maximum.
    pub fn increment(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Decrement, saturating at zero.
    pub fn decrement(&mut self) {
        if self.value > 0 {
            self.value -= 1;
        }
    }

    /// Reset to zero (the JRS "resetting" behaviour on a misprediction).
    pub fn reset(&mut self) {
        self.value = 0;
    }

    /// For 2-bit direction counters: `true` when the counter predicts taken
    /// (value in the upper half of its range).
    pub fn predicts_taken(self) -> bool {
        self.value > self.max / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bit_counter_hysteresis() {
        let mut c = SaturatingCounter::new(2, 1); // weakly not-taken
        assert!(!c.predicts_taken());
        c.increment(); // 2: weakly taken
        assert!(c.predicts_taken());
        c.increment(); // 3: strongly taken
        c.increment(); // saturates at 3
        assert_eq!(c.value(), 3);
        c.decrement(); // 2: still predicts taken
        assert!(c.predicts_taken());
    }

    #[test]
    fn saturates_at_zero() {
        let mut c = SaturatingCounter::new(2, 0);
        c.decrement();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn one_bit_counter() {
        let mut c = SaturatingCounter::new(1, 0);
        assert_eq!(c.max(), 1);
        c.increment();
        c.increment();
        assert_eq!(c.value(), 1);
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn eight_bit_counter() {
        let mut c = SaturatingCounter::new(8, 254);
        c.increment();
        c.increment();
        assert_eq!(c.value(), 255);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_bits_rejected() {
        let _ = SaturatingCounter::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "range")]
    fn initial_out_of_range_rejected() {
        let _ = SaturatingCounter::new(2, 4);
    }
}
