//! Self-monitoring confidence estimation — the paper's "lesson learned".
//!
//! Paper §5.1, on the m88ksim anomaly: *"a successful branch confidence
//! estimator for SEE should be able to monitor its performance dynamically
//! and revert back to strict monopath execution (always indicating
//! 'high-confidence') if it makes too many errors."* The paper leaves this
//! as future work; [`AdaptiveJrs`] implements it.
//!
//! The wrapper tracks the recent PVN (fraction of low-confidence flags
//! that were real mispredictions) over a sliding window of resolved
//! low-confidence branches. When the observed PVN falls below a floor the
//! estimator *suppresses* low-confidence signals (SEE degrades gracefully
//! to monopath); it keeps monitoring shadow estimates and re-enables
//! itself when the underlying estimator becomes trustworthy again.

use crate::confidence::{Confidence, Jrs, JrsConfig};

/// Configuration of the adaptive wrapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveConfig {
    /// The wrapped JRS estimator.
    pub inner: JrsConfig,
    /// Re-evaluate the gate every `window` resolved low-confidence
    /// estimates.
    pub window: u32,
    /// Suppress divergence while observed PVN (percent) is below this.
    pub min_pvn_percent: u32,
}

impl AdaptiveConfig {
    /// Paper-baseline JRS wrapped with a 512-sample window and a 20% PVN
    /// floor: a pathological estimator (the paper's m88ksim ran at 16%)
    /// falls below it, while the 30–55% PVN of healthy benchmarks keeps
    /// the gate open even through window-to-window noise.
    pub fn paper_baseline() -> Self {
        AdaptiveConfig {
            inner: JrsConfig::paper_baseline(),
            window: 512,
            min_pvn_percent: 20,
        }
    }
}

/// A JRS estimator that reverts to monopath when its PVN collapses.
#[derive(Debug, Clone)]
pub struct AdaptiveJrs {
    jrs: Jrs,
    config: AdaptiveConfig,
    /// Low-confidence shadow estimates resolved in the current window.
    low_seen: u32,
    /// …of which were actually mispredicted.
    low_wrong: u32,
    /// When `false`, low-confidence signals are suppressed.
    enabled: bool,
}

impl AdaptiveJrs {
    /// Build from `config`.
    ///
    /// # Panics
    /// Panics if `window` is zero, `min_pvn_percent` exceeds 100, or the
    /// inner JRS configuration is invalid.
    pub fn new(config: AdaptiveConfig) -> Self {
        assert!(config.window > 0, "window must be nonzero");
        assert!(config.min_pvn_percent <= 100, "PVN floor is a percentage");
        AdaptiveJrs {
            jrs: Jrs::new(config.inner),
            config,
            low_seen: 0,
            low_wrong: 0,
            enabled: true,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// `true` while low-confidence signals pass through.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Bytes of estimator state (the underlying table; the monitor is two
    /// counters and a bit).
    pub fn state_bytes(&self) -> usize {
        self.jrs.state_bytes()
    }

    /// Estimate confidence; while the gate is closed every estimate is
    /// [`Confidence::High`] (monopath behaviour).
    pub fn estimate(&self, pc: usize, ghr: u64, predicted_taken: bool) -> Confidence {
        match self.jrs.estimate(pc, ghr, predicted_taken) {
            Confidence::Low if self.enabled => Confidence::Low,
            _ => Confidence::High,
        }
    }

    /// Update at branch commit. The shadow estimate (what the underlying
    /// JRS *would* have said) is monitored even while suppressed, so the
    /// gate can re-open.
    pub fn update(&mut self, pc: usize, ghr: u64, predicted_taken: bool, correct: bool) {
        if self.jrs.estimate(pc, ghr, predicted_taken) == Confidence::Low {
            self.low_seen += 1;
            if !correct {
                self.low_wrong += 1;
            }
            if self.low_seen >= self.config.window {
                let pvn_percent = 100 * self.low_wrong / self.low_seen;
                self.enabled = pvn_percent >= self.config.min_pvn_percent;
                self.low_seen = 0;
                self.low_wrong = 0;
            }
        }
        self.jrs.update(pc, ghr, predicted_taken, correct);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AdaptiveJrs {
        AdaptiveJrs::new(AdaptiveConfig {
            inner: JrsConfig {
                counter_bits: 1,
                threshold: 1,
                index_bits: 8,
                enhanced_index: false,
            },
            window: 10,
            min_pvn_percent: 30,
        })
    }

    /// Feed `n` low-confidence resolutions with the given correctness.
    /// Uses a distinct pc per event so each hits a cold (low) counter.
    fn feed(a: &mut AdaptiveJrs, n: u32, correct: bool, base_pc: usize) {
        for i in 0..n {
            let pc = base_pc + i as usize;
            assert_eq!(
                a.jrs.estimate(pc, 0, true),
                Confidence::Low,
                "setup: counter must be cold"
            );
            a.update(pc, 0, true, correct);
        }
    }

    #[test]
    fn gate_closes_on_low_pvn() {
        let mut a = tiny();
        assert!(a.is_enabled());
        // 10 low-confidence estimates, all actually correct: PVN 0%.
        feed(&mut a, 10, true, 1000);
        assert!(!a.is_enabled(), "gate must close below the PVN floor");
        // While closed, everything is high confidence.
        assert_eq!(a.estimate(5000, 0, true), Confidence::High);
    }

    #[test]
    fn gate_reopens_when_pvn_recovers() {
        let mut a = tiny();
        feed(&mut a, 10, true, 1000);
        assert!(!a.is_enabled());
        // Next window: all low-confidence flags are real mispredictions.
        feed(&mut a, 10, false, 2000);
        assert!(a.is_enabled(), "gate must reopen at high PVN");
        assert_eq!(a.estimate(9000, 0, true), Confidence::Low);
    }

    #[test]
    fn high_pvn_keeps_gate_open() {
        let mut a = tiny();
        // 4 wrong out of 10 = 40% ≥ 30% floor.
        feed(&mut a, 4, false, 1000);
        feed(&mut a, 6, true, 3000);
        assert!(a.is_enabled());
    }

    #[test]
    fn state_accounting_matches_inner() {
        let a = AdaptiveJrs::new(AdaptiveConfig::paper_baseline());
        assert_eq!(
            a.state_bytes(),
            Jrs::new(JrsConfig::paper_baseline()).state_bytes()
        );
        assert_eq!(a.config().window, 512);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_rejected() {
        let _ = AdaptiveJrs::new(AdaptiveConfig {
            inner: JrsConfig::paper_baseline(),
            window: 0,
            min_pvn_percent: 25,
        });
    }
}
