//! Additional direction predictors from the paper's related-work list
//! (§2 cites Yeh & Patt's two-level predictors and Sprangle's agree
//! predictor). These serve the predictor-ablation experiments; the
//! paper's own evaluation uses gshare.

use crate::counters::SaturatingCounter;
use crate::direction::{Bimodal, Gshare};

/// A two-level *local*-history predictor (Yeh & Patt "PAg"): a table of
/// per-branch history registers indexes a shared pattern table of 2-bit
/// counters. Captures per-branch periodic patterns global history dilutes.
#[derive(Debug, Clone)]
pub struct TwoLevelLocal {
    history_bits: u32,
    histories: Vec<u16>,
    pattern: Vec<SaturatingCounter>,
    bht_mask: usize,
}

impl TwoLevelLocal {
    /// `bht_bits` of branch-history-table index (per-PC), `history_bits`
    /// of local history per entry (pattern table holds
    /// `2^history_bits` counters).
    ///
    /// # Panics
    /// Panics if either size is 0 or unreasonably large.
    pub fn new(bht_bits: u32, history_bits: u32) -> Self {
        assert!((1..=20).contains(&bht_bits), "bht bits in 1..=20");
        assert!((1..=16).contains(&history_bits), "history bits in 1..=16");
        TwoLevelLocal {
            history_bits,
            histories: vec![0; 1 << bht_bits],
            pattern: vec![SaturatingCounter::new(2, 1); 1 << history_bits],
            bht_mask: (1 << bht_bits) - 1,
        }
    }

    /// Bytes of predictor state (history registers + pattern counters).
    pub fn state_bytes(&self) -> usize {
        (self.histories.len() * self.history_bits as usize + self.pattern.len() * 2).div_ceil(8)
    }

    fn pattern_index(&self, pc: usize) -> usize {
        let h = self.histories[pc & self.bht_mask];
        (h as usize) & ((1 << self.history_bits) - 1)
    }

    /// Predicted direction for the branch at `pc`.
    pub fn predict(&self, pc: usize) -> bool {
        self.pattern[self.pattern_index(pc)].predicts_taken()
    }

    /// Train with the resolved outcome and shift it into the local history.
    pub fn update(&mut self, pc: usize, taken: bool) {
        let idx = self.pattern_index(pc);
        if taken {
            self.pattern[idx].increment();
        } else {
            self.pattern[idx].decrement();
        }
        let h = &mut self.histories[pc & self.bht_mask];
        *h = (*h << 1) | taken as u16;
    }
}

/// Sprangle et al.'s *agree* predictor: a bimodal base ("bias") plus a
/// gshare-indexed table predicting whether the branch will *agree* with
/// its bias — converting destructive aliasing into constructive aliasing.
#[derive(Debug, Clone)]
pub struct Agree {
    bias: Bimodal,
    agree: Gshare,
}

impl Agree {
    /// `bias_bits` of bimodal bias table, `history_bits` of agree table.
    pub fn new(bias_bits: u32, history_bits: u32) -> Self {
        Agree {
            bias: Bimodal::new(bias_bits),
            agree: Gshare::new(history_bits),
        }
    }

    /// Bytes of predictor state.
    pub fn state_bytes(&self) -> usize {
        self.bias.state_bytes() + self.agree.state_bytes()
    }

    /// Predicted direction: bias XNOR agree.
    pub fn predict(&self, pc: usize, ghr: u64) -> bool {
        let bias = self.bias.predict(pc);
        let agrees = self.agree.predict(pc, ghr);
        bias == agrees
    }

    /// Train both tables with the resolved outcome.
    pub fn update(&mut self, pc: usize, ghr: u64, taken: bool) {
        let bias = self.bias.predict(pc);
        // The agree table learns whether the outcome matched the bias
        // *before* the bias itself trains.
        self.agree.update(pc, ghr, taken == bias);
        self.bias.update(pc, taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_history_learns_periodic_pattern() {
        // Pattern T T N repeating — global-history-free, purely local.
        let mut p = TwoLevelLocal::new(8, 8);
        let pattern = [true, true, false];
        // Warm up.
        for i in 0..120 {
            p.update(42, pattern[i % 3]);
        }
        let mut correct = 0;
        for i in 120..180 {
            if p.predict(42) == pattern[i % 3] {
                correct += 1;
            }
            p.update(42, pattern[i % 3]);
        }
        assert!(correct >= 55, "only {correct}/60 correct");
    }

    #[test]
    fn local_histories_are_per_branch() {
        let mut p = TwoLevelLocal::new(8, 6);
        for _ in 0..20 {
            p.update(1, true);
            p.update(2, false);
        }
        assert!(p.predict(1));
        assert!(!p.predict(2));
    }

    #[test]
    fn agree_learns_biased_branches() {
        let mut p = Agree::new(10, 10);
        for _ in 0..8 {
            p.update(7, 0b1010, true);
        }
        assert!(p.predict(7, 0b1010));
        for _ in 0..12 {
            p.update(9, 0b1010, false);
        }
        assert!(!p.predict(9, 0b1010));
    }

    #[test]
    fn state_accounting() {
        // 256 entries × 8-bit history + 256 × 2-bit counters.
        assert_eq!(
            TwoLevelLocal::new(8, 8).state_bytes(),
            (256 * 8 + 256 * 2) / 8
        );
        assert_eq!(Agree::new(10, 10).state_bytes(), 256 + 256);
    }

    #[test]
    #[should_panic(expected = "bht bits")]
    fn rejects_zero_bht() {
        let _ = TwoLevelLocal::new(0, 8);
    }
}
