//! Branch direction predictors.

use crate::counters::SaturatingCounter;

/// McFarling's gshare predictor: `(GHR ⊕ PC)` indexes a table of 2-bit
/// saturating counters (paper §4.2; baseline = 14 history bits, 16 k
/// counters, 4 kB of state).
#[derive(Debug, Clone)]
pub struct Gshare {
    history_bits: u32,
    table: Vec<SaturatingCounter>,
}

impl Gshare {
    /// A gshare predictor with `history_bits` bits of global history and
    /// `2^history_bits` two-bit counters, initialized weakly not-taken.
    ///
    /// # Panics
    /// Panics if `history_bits` is 0 or greater than 28.
    pub fn new(history_bits: u32) -> Self {
        assert!(
            (1..=28).contains(&history_bits),
            "history bits must be in 1..=28"
        );
        Gshare {
            history_bits,
            table: vec![SaturatingCounter::new(2, 1); 1 << history_bits],
        }
    }

    /// Number of global history bits.
    pub fn history_bits(&self) -> u32 {
        self.history_bits
    }

    /// Bytes of predictor state (2 bits per counter), for Fig. 9's
    /// equal-area comparison.
    pub fn state_bytes(&self) -> usize {
        self.table.len() * 2 / 8
    }

    fn index(&self, pc: usize, ghr: u64) -> usize {
        let mask = (1usize << self.history_bits) - 1;
        (pc ^ ghr as usize) & mask
    }

    /// Predicted direction for the branch at `pc` under (speculative)
    /// global history `ghr`.
    pub fn predict(&self, pc: usize, ghr: u64) -> bool {
        self.table[self.index(pc, ghr)].predicts_taken()
    }

    /// `true` when the 2-bit counter backing this prediction is in a
    /// *strong* (saturated) state. Grunwald, Klauser, Manne & Pleszkun
    /// (the paper's reference \[4\]) use this as a zero-cost confidence
    /// estimator: weak counters are diffident predictions.
    pub fn is_strong(&self, pc: usize, ghr: u64) -> bool {
        let c = self.table[self.index(pc, ghr)];
        c.value() == 0 || c.value() == c.max()
    }

    /// Train with the resolved outcome. `ghr` must be the same history
    /// value used at prediction time (the pipeline checkpoints it).
    pub fn update(&mut self, pc: usize, ghr: u64, taken: bool) {
        let idx = self.index(pc, ghr);
        let c = &mut self.table[idx];
        if taken {
            c.increment();
        } else {
            c.decrement();
        }
    }
}

/// A PC-indexed bimodal predictor (2-bit counters), used for ablations.
#[derive(Debug, Clone)]
pub struct Bimodal {
    index_bits: u32,
    table: Vec<SaturatingCounter>,
}

impl Bimodal {
    /// A bimodal predictor with `2^index_bits` two-bit counters.
    ///
    /// # Panics
    /// Panics if `index_bits` is 0 or greater than 28.
    pub fn new(index_bits: u32) -> Self {
        assert!(
            (1..=28).contains(&index_bits),
            "index bits must be in 1..=28"
        );
        Bimodal {
            index_bits,
            table: vec![SaturatingCounter::new(2, 1); 1 << index_bits],
        }
    }

    /// Bytes of predictor state.
    pub fn state_bytes(&self) -> usize {
        self.table.len() * 2 / 8
    }

    fn index(&self, pc: usize) -> usize {
        pc & ((1usize << self.index_bits) - 1)
    }

    /// Predicted direction for the branch at `pc` (history-independent).
    pub fn predict(&self, pc: usize) -> bool {
        self.table[self.index(pc)].predicts_taken()
    }

    /// Train with the resolved outcome.
    pub fn update(&mut self, pc: usize, taken: bool) {
        let idx = self.index(pc);
        let c = &mut self.table[idx];
        if taken {
            c.increment();
        } else {
            c.decrement();
        }
    }
}

/// Static always-taken / always-not-taken prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticPredictor {
    taken: bool,
}

impl StaticPredictor {
    /// Always predict taken.
    pub const fn taken() -> Self {
        StaticPredictor { taken: true }
    }

    /// Always predict not taken.
    pub const fn not_taken() -> Self {
        StaticPredictor { taken: false }
    }

    /// The (constant) prediction.
    pub fn predict(&self) -> bool {
        self.taken
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::push_history;

    #[test]
    fn gshare_learns_biased_branch() {
        let mut bp = Gshare::new(10);
        // Same (pc, history) point trained repeatedly.
        bp.update(42, 0b1010, true);
        bp.update(42, 0b1010, true);
        assert!(bp.predict(42, 0b1010));
        // An untrained history point still predicts not-taken.
        assert!(!bp.predict(42, push_history(0b1010, true)));
    }

    #[test]
    fn gshare_learns_history_correlated_branch() {
        // Branch at pc=7 alternates T,N,T,N...; with history it is fully
        // predictable after warmup.
        let mut bp = Gshare::new(12);
        let mut ghr = 0;
        let mut outcome = true;
        for _ in 0..64 {
            bp.update(7, ghr, outcome);
            ghr = push_history(ghr, outcome);
            outcome = !outcome;
        }
        // Now predictions should match the alternating pattern.
        let mut correct = 0;
        for _ in 0..32 {
            if bp.predict(7, ghr) == outcome {
                correct += 1;
            }
            bp.update(7, ghr, outcome);
            ghr = push_history(ghr, outcome);
            outcome = !outcome;
        }
        assert!(correct >= 30, "only {correct}/32 correct");
    }

    #[test]
    fn gshare_state_bytes_matches_paper() {
        // 14-bit history: 16k 2-bit counters = 4 kB.
        assert_eq!(Gshare::new(14).state_bytes(), 4096);
        // 10-bit history: 1k counters = 256 B (paper's 0.25 kB point).
        assert_eq!(Gshare::new(10).state_bytes(), 256);
    }

    #[test]
    fn gshare_different_histories_use_different_counters() {
        let mut bp = Gshare::new(8);
        bp.update(0, 0b01, true);
        bp.update(0, 0b01, true);
        bp.update(0, 0b10, false);
        bp.update(0, 0b10, false);
        assert!(bp.predict(0, 0b01));
        assert!(!bp.predict(0, 0b10));
    }

    #[test]
    fn bimodal_learns_per_pc() {
        let mut bp = Bimodal::new(8);
        bp.update(3, true);
        bp.update(3, true);
        bp.update(4, false);
        assert!(bp.predict(3));
        assert!(!bp.predict(4));
        assert_eq!(Bimodal::new(10).state_bytes(), 256);
    }

    #[test]
    fn static_predictors() {
        assert!(StaticPredictor::taken().predict());
        assert!(!StaticPredictor::not_taken().predict());
    }

    #[test]
    #[should_panic(expected = "history bits")]
    fn gshare_rejects_zero_bits() {
        let _ = Gshare::new(0);
    }

    #[test]
    fn initial_prediction_is_not_taken() {
        // Counters start weakly not-taken.
        let bp = Gshare::new(8);
        assert!(!bp.predict(123, 0));
    }

    #[test]
    fn strength_tracks_saturation() {
        let mut bp = Gshare::new(8);
        assert!(!bp.is_strong(3, 0), "weak at reset");
        bp.update(3, 0, true);
        bp.update(3, 0, true);
        assert!(bp.is_strong(3, 0), "strongly taken after training");
        bp.update(3, 0, false);
        assert!(!bp.is_strong(3, 0), "back to weak");
        bp.update(3, 0, false);
        bp.update(3, 0, false);
        assert!(bp.is_strong(3, 0), "strongly not-taken");
    }
}

/// A branch target buffer for indirect jumps (`jr`): a direct-mapped,
/// tagged table of last-seen targets.
///
/// ```
/// use pp_predictor::Btb;
///
/// let mut btb = Btb::new(10);
/// assert_eq!(btb.predict(64), None);    // cold: fetch must stall
/// btb.update(64, 7);                    // jr at pc 64 resolved to pc 7
/// assert_eq!(btb.predict(64), Some(7));
/// ```
#[derive(Debug, Clone)]
pub struct Btb {
    index_bits: u32,
    entries: Vec<Option<(u64, usize)>>,
}

impl Btb {
    /// A BTB with `2^index_bits` entries.
    ///
    /// # Panics
    /// Panics if `index_bits` is 0 or greater than 24.
    pub fn new(index_bits: u32) -> Self {
        assert!(
            (1..=24).contains(&index_bits),
            "BTB index bits must be in 1..=24"
        );
        Btb {
            index_bits,
            entries: vec![None; 1 << index_bits],
        }
    }

    fn slot(&self, pc: usize) -> (usize, u64) {
        let idx = pc & ((1usize << self.index_bits) - 1);
        (idx, (pc >> self.index_bits) as u64)
    }

    /// Predicted target for the indirect jump at `pc`, if the BTB has a
    /// (tag-matching) entry.
    pub fn predict(&self, pc: usize) -> Option<usize> {
        let (idx, tag) = self.slot(pc);
        match self.entries[idx] {
            Some((t, target)) if t == tag => Some(target),
            _ => None,
        }
    }

    /// Record the resolved target.
    pub fn update(&mut self, pc: usize, target: usize) {
        let (idx, tag) = self.slot(pc);
        self.entries[idx] = Some((tag, target));
    }
}

#[cfg(test)]
mod btb_tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut b = Btb::new(8);
        assert_eq!(b.predict(100), None);
        b.update(100, 7);
        assert_eq!(b.predict(100), Some(7));
        b.update(100, 9);
        assert_eq!(b.predict(100), Some(9));
    }

    #[test]
    fn tags_disambiguate_aliases() {
        let mut b = Btb::new(4);
        b.update(3, 10);
        // pc 19 aliases slot 3 but has a different tag.
        assert_eq!(b.predict(19), None);
        b.update(19, 20);
        assert_eq!(b.predict(19), Some(20));
        assert_eq!(b.predict(3), None, "evicted by the alias");
    }

    #[test]
    #[should_panic(expected = "index bits")]
    fn zero_bits_rejected() {
        let _ = Btb::new(0);
    }
}
