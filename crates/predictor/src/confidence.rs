//! Branch confidence estimation (paper §3.2.7, §4.2).

use crate::counters::SaturatingCounter;

/// A confidence estimate for one branch prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Confidence {
    /// The prediction is likely correct: follow it monopath-style.
    High,
    /// The prediction is diffident: SEE diverges and executes both paths.
    Low,
}

/// Configuration of a [`Jrs`] estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JrsConfig {
    /// Counter width in bits. The original JRS design advocates 4-bit
    /// counters; the paper found 1-bit counters give much higher PVN for
    /// SEE and uses them in the baseline.
    pub counter_bits: u32,
    /// A prediction is high-confidence when its counter value is at least
    /// this threshold. With 1-bit counters the natural threshold is 1.
    pub threshold: u8,
    /// log2 of the number of counters. The paper always sizes the estimator
    /// equal to the branch predictor (14 → 16 k counters at baseline).
    pub index_bits: u32,
    /// The paper's enhanced indexing: fold the speculative outcome of the
    /// branch being estimated into the global history used for indexing.
    pub enhanced_index: bool,
}

impl JrsConfig {
    /// The paper's baseline estimator: 1-bit resetting counters, threshold
    /// 1, 16 k entries, enhanced indexing.
    pub fn paper_baseline() -> Self {
        JrsConfig {
            counter_bits: 1,
            threshold: 1,
            index_bits: 14,
            enhanced_index: true,
        }
    }

    /// The original Jacobsen et al. configuration: 4-bit resetting
    /// counters (high-confidence once ≥ 8 correct in a row), plain gshare
    /// indexing.
    pub fn original_jrs(index_bits: u32) -> Self {
        JrsConfig {
            counter_bits: 4,
            threshold: 8,
            index_bits,
            enhanced_index: false,
        }
    }

    /// Same configuration with a different table size.
    #[must_use]
    pub fn with_index_bits(mut self, index_bits: u32) -> Self {
        self.index_bits = index_bits;
        self
    }
}

/// The Jacobsen–Rotenberg–Smith resetting-counter confidence estimator.
///
/// Each counter holds the number of correct predictions since the last
/// misprediction that indexed it; a saturating count at or above the
/// threshold signals [`Confidence::High`].
#[derive(Debug, Clone)]
pub struct Jrs {
    config: JrsConfig,
    table: Vec<SaturatingCounter>,
}

impl Jrs {
    /// Build an estimator from `config`.
    ///
    /// # Panics
    /// Panics if `index_bits` is 0 or greater than 28, or the counter/
    /// threshold combination is unrepresentable.
    pub fn new(config: JrsConfig) -> Self {
        assert!(
            (1..=28).contains(&config.index_bits),
            "index bits must be in 1..=28"
        );
        let probe = SaturatingCounter::new(config.counter_bits, 0);
        assert!(
            config.threshold <= probe.max() && config.threshold > 0,
            "threshold must be in 1..=counter max"
        );
        Jrs {
            config,
            table: vec![probe; 1 << config.index_bits],
        }
    }

    /// The configuration this estimator was built with.
    pub fn config(&self) -> &JrsConfig {
        &self.config
    }

    /// Bytes of estimator state, for Fig. 9's equal-area accounting
    /// (1-bit counters at 14 index bits = 2 kB).
    pub fn state_bytes(&self) -> usize {
        (self.table.len() * self.config.counter_bits as usize).div_ceil(8)
    }

    fn index(&self, pc: usize, ghr: u64, predicted_taken: bool) -> usize {
        let hist = if self.config.enhanced_index {
            (ghr << 1) | predicted_taken as u64
        } else {
            ghr
        };
        let mask = (1usize << self.config.index_bits) - 1;
        (pc ^ hist as usize) & mask
    }

    /// Estimate confidence in predicting `predicted_taken` for the branch
    /// at `pc` under speculative history `ghr`.
    pub fn estimate(&self, pc: usize, ghr: u64, predicted_taken: bool) -> Confidence {
        if self.table[self.index(pc, ghr, predicted_taken)].value() >= self.config.threshold {
            Confidence::High
        } else {
            Confidence::Low
        }
    }

    /// Update at branch resolution/commit: increment on a correct
    /// prediction, reset on a misprediction. Arguments must match those
    /// used at [`Jrs::estimate`] time (the pipeline checkpoints them).
    pub fn update(&mut self, pc: usize, ghr: u64, predicted_taken: bool, correct: bool) {
        let idx = self.index(pc, ghr, predicted_taken);
        let c = &mut self.table[idx];
        if correct {
            c.increment();
        } else {
            c.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_bit() -> Jrs {
        Jrs::new(JrsConfig {
            counter_bits: 1,
            threshold: 1,
            index_bits: 10,
            enhanced_index: false,
        })
    }

    #[test]
    fn fresh_estimator_is_low_confidence() {
        let jrs = one_bit();
        assert_eq!(jrs.estimate(5, 0, true), Confidence::Low);
    }

    #[test]
    fn one_correct_prediction_flips_one_bit_counter_to_high() {
        let mut jrs = one_bit();
        jrs.update(5, 0, true, true);
        assert_eq!(jrs.estimate(5, 0, true), Confidence::High);
    }

    #[test]
    fn misprediction_resets_to_low() {
        let mut jrs = one_bit();
        jrs.update(5, 0, true, true);
        jrs.update(5, 0, true, false);
        assert_eq!(jrs.estimate(5, 0, true), Confidence::Low);
    }

    #[test]
    fn four_bit_requires_threshold_correct_predictions() {
        let mut jrs = Jrs::new(JrsConfig::original_jrs(10));
        for i in 0..8 {
            assert_eq!(
                jrs.estimate(5, 0, true),
                Confidence::Low,
                "still low after {i} updates"
            );
            jrs.update(5, 0, true, true);
        }
        assert_eq!(jrs.estimate(5, 0, true), Confidence::High);
    }

    #[test]
    fn enhanced_indexing_separates_predicted_directions() {
        let mut jrs = Jrs::new(JrsConfig {
            counter_bits: 1,
            threshold: 1,
            index_bits: 10,
            enhanced_index: true,
        });
        // Train only the "predicted taken" entry.
        jrs.update(5, 0, true, true);
        assert_eq!(jrs.estimate(5, 0, true), Confidence::High);
        // The "predicted not-taken" entry is a different counter.
        assert_eq!(jrs.estimate(5, 0, false), Confidence::Low);
    }

    #[test]
    fn plain_indexing_ignores_predicted_direction() {
        let mut jrs = one_bit();
        jrs.update(5, 0, true, true);
        assert_eq!(jrs.estimate(5, 0, false), Confidence::High);
    }

    #[test]
    fn state_bytes_accounting() {
        // Paper baseline: 16k 1-bit counters = 2 kB.
        assert_eq!(Jrs::new(JrsConfig::paper_baseline()).state_bytes(), 2048);
        // Original JRS at 10 bits: 1k 4-bit counters = 512 B.
        assert_eq!(Jrs::new(JrsConfig::original_jrs(10)).state_bytes(), 512);
    }

    #[test]
    fn paper_baseline_shape() {
        let c = JrsConfig::paper_baseline();
        assert_eq!(c.counter_bits, 1);
        assert_eq!(c.threshold, 1);
        assert_eq!(c.index_bits, 14);
        assert!(c.enhanced_index);
        assert_eq!(c.with_index_bits(12).index_bits, 12);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn threshold_above_counter_max_rejected() {
        let _ = Jrs::new(JrsConfig {
            counter_bits: 1,
            threshold: 2,
            index_bits: 8,
            enhanced_index: false,
        });
    }

    #[test]
    fn different_histories_different_counters() {
        let mut jrs = one_bit();
        jrs.update(5, 0b1, true, true);
        assert_eq!(jrs.estimate(5, 0b1, true), Confidence::High);
        assert_eq!(jrs.estimate(5, 0b10, true), Confidence::Low);
    }
}
