//! # pp-predictor — branch prediction and confidence estimation
//!
//! Table-based branch direction predictors and the branch confidence
//! estimators used by Selective Eager Execution (paper §3.2.7, §4.2):
//!
//! * [`Gshare`] — McFarling's gshare: global history XOR branch address
//!   indexing a table of 2-bit saturating counters. The paper's baseline
//!   uses 14 history bits (16 k counters).
//! * [`Bimodal`] — PC-indexed 2-bit counters (for ablations).
//! * [`StaticPredictor`] — always-taken / always-not-taken baselines.
//! * [`Jrs`] — the Jacobsen–Rotenberg–Smith resetting-counter confidence
//!   estimator, with the paper's two modifications: 1-bit counters (better
//!   PVN than the original 4-bit) and *enhanced indexing* that folds the
//!   speculative outcome of the branch being estimated into the history.
//!
//! Speculative global history is a per-path value owned by the pipeline;
//! predictors take it as an argument ([`push_history`] maintains it), so
//! the same tables serve many simultaneous paths, as in the PolyPath
//! micro-architecture.
//!
//! ```
//! use pp_predictor::{Gshare, push_history};
//!
//! let mut bp = Gshare::new(14);
//! // A loop's back-edge branch under an all-taken history is taken again.
//! let ghr = push_history(push_history(0, true), true);
//! bp.update(100, ghr, true);
//! bp.update(100, ghr, true);
//! assert!(bp.predict(100, ghr));
//! ```

mod adaptive;
mod confidence;
mod counters;
mod direction;
mod twolevel;

pub use adaptive::{AdaptiveConfig, AdaptiveJrs};
pub use confidence::{Confidence, Jrs, JrsConfig};
pub use counters::SaturatingCounter;
pub use direction::{Bimodal, Btb, Gshare, StaticPredictor};
pub use twolevel::{Agree, TwoLevelLocal};

/// Shift one branch outcome into a speculative global history register.
///
/// The PolyPath pipeline keeps one GHR per live path, updated speculatively
/// at prediction time and restored from the branch checkpoint on
/// misprediction recovery (the paper reports ~1% accuracy gain from
/// speculative update).
pub fn push_history(ghr: u64, taken: bool) -> u64 {
    (ghr << 1) | taken as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_history_shifts_in_lsb() {
        assert_eq!(push_history(0, true), 1);
        assert_eq!(push_history(1, false), 2);
        assert_eq!(push_history(0b101, true), 0b1011);
    }
}
