//! Shared instruction semantics.
//!
//! Both the functional emulator (`pp-func`) and the pipeline's execution
//! units (`pp-core`) evaluate instructions through these helpers so results
//! agree bit-for-bit. All operations are total: mis-speculated (wrong-path)
//! instructions execute with arbitrary garbage operands and must never trap,
//! so division by zero, overflowing shifts, and `i64::MIN / -1` all have
//! defined results.

use crate::op::{AluOp, Cond, FpOp};

/// Evaluate an integer ALU operation.
///
/// * arithmetic wraps on 64 bits,
/// * `Div`/`Rem` by zero yield `0`,
/// * `i64::MIN / -1` wraps (yields `i64::MIN`, remainder `0`),
/// * shift amounts are taken modulo 64.
pub fn alu_eval(op: AluOp, a: i64, b: i64) -> i64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        AluOp::Rem => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Sll => ((a as u64) << (b as u64 & 63)) as i64,
        AluOp::Srl => ((a as u64) >> (b as u64 & 63)) as i64,
        AluOp::Sra => a >> (b as u64 & 63),
        AluOp::Slt => (a < b) as i64,
        AluOp::Sltu => ((a as u64) < (b as u64)) as i64,
    }
}

/// Evaluate a branch condition (signed comparison).
pub fn cond_eval(cond: Cond, a: i64, b: i64) -> bool {
    match cond {
        Cond::Eq => a == b,
        Cond::Ne => a != b,
        Cond::Lt => a < b,
        Cond::Le => a <= b,
        Cond::Gt => a > b,
        Cond::Ge => a >= b,
    }
}

/// Evaluate a floating point operation on register bit patterns.
///
/// FP registers hold `f64` values bit-for-bit in an `i64`. `Itof` treats the
/// first source as a signed integer; `Ftoi` converts saturating, with NaN
/// mapping to `0` (matching `f64 as i64` semantics in Rust).
pub fn fp_eval(op: FpOp, a_bits: i64, b_bits: i64) -> i64 {
    let a = f64::from_bits(a_bits as u64);
    let b = f64::from_bits(b_bits as u64);
    match op {
        FpOp::Add => (a + b).to_bits() as i64,
        FpOp::Sub => (a - b).to_bits() as i64,
        FpOp::Mul => (a * b).to_bits() as i64,
        FpOp::Div => (a / b).to_bits() as i64,
        FpOp::Itof => (a_bits as f64).to_bits() as i64,
        FpOp::Ftoi => a as i64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_wrap() {
        assert_eq!(alu_eval(AluOp::Add, i64::MAX, 1), i64::MIN);
        assert_eq!(alu_eval(AluOp::Sub, i64::MIN, 1), i64::MAX);
    }

    #[test]
    fn div_rem_by_zero_are_zero() {
        assert_eq!(alu_eval(AluOp::Div, 42, 0), 0);
        assert_eq!(alu_eval(AluOp::Rem, 42, 0), 0);
    }

    #[test]
    fn div_min_by_minus_one_wraps() {
        assert_eq!(alu_eval(AluOp::Div, i64::MIN, -1), i64::MIN);
        assert_eq!(alu_eval(AluOp::Rem, i64::MIN, -1), 0);
    }

    #[test]
    fn shifts_mask_amount() {
        assert_eq!(alu_eval(AluOp::Sll, 1, 65), 2);
        assert_eq!(alu_eval(AluOp::Srl, -1, 63), 1);
        assert_eq!(alu_eval(AluOp::Sra, -8, 2), -2);
        assert_eq!(alu_eval(AluOp::Srl, -8, 1), (u64::MAX >> 1) as i64 - 3);
    }

    #[test]
    fn set_less_than() {
        assert_eq!(alu_eval(AluOp::Slt, -1, 0), 1);
        assert_eq!(alu_eval(AluOp::Sltu, -1, 0), 0); // -1 is u64::MAX
        assert_eq!(alu_eval(AluOp::Slt, 3, 3), 0);
    }

    #[test]
    fn logic_ops() {
        assert_eq!(alu_eval(AluOp::And, 0b1100, 0b1010), 0b1000);
        assert_eq!(alu_eval(AluOp::Or, 0b1100, 0b1010), 0b1110);
        assert_eq!(alu_eval(AluOp::Xor, 0b1100, 0b1010), 0b0110);
    }

    #[test]
    fn conditions() {
        assert!(cond_eval(Cond::Eq, 1, 1));
        assert!(cond_eval(Cond::Ne, 1, 2));
        assert!(cond_eval(Cond::Lt, -5, 0));
        assert!(cond_eval(Cond::Le, 5, 5));
        assert!(cond_eval(Cond::Gt, 6, 5));
        assert!(cond_eval(Cond::Ge, 5, 5));
        assert!(!cond_eval(Cond::Lt, 5, 5));
    }

    #[test]
    fn cond_matches_negation() {
        for c in Cond::ALL {
            for a in [-3i64, 0, 1, i64::MAX, i64::MIN] {
                for b in [-3i64, 0, 1, i64::MAX] {
                    assert_ne!(cond_eval(c, a, b), cond_eval(c.negate(), a, b));
                }
            }
        }
    }

    #[test]
    fn fp_roundtrip() {
        let a = 2.5f64.to_bits() as i64;
        let b = 4.0f64.to_bits() as i64;
        assert_eq!(f64::from_bits(fp_eval(FpOp::Add, a, b) as u64), 6.5);
        assert_eq!(f64::from_bits(fp_eval(FpOp::Mul, a, b) as u64), 10.0);
        assert_eq!(f64::from_bits(fp_eval(FpOp::Div, a, b) as u64), 0.625);
        assert_eq!(f64::from_bits(fp_eval(FpOp::Sub, a, b) as u64), -1.5);
    }

    #[test]
    fn fp_conversions() {
        assert_eq!(f64::from_bits(fp_eval(FpOp::Itof, 7, 0) as u64), 7.0);
        let x = 9.9f64.to_bits() as i64;
        assert_eq!(fp_eval(FpOp::Ftoi, x, 0), 9);
        let nan = f64::NAN.to_bits() as i64;
        assert_eq!(fp_eval(FpOp::Ftoi, nan, 0), 0);
    }

    #[test]
    fn fp_div_by_zero_is_inf_not_trap() {
        let a = 1.0f64.to_bits() as i64;
        let z = 0.0f64.to_bits() as i64;
        assert!(f64::from_bits(fp_eval(FpOp::Div, a, z) as u64).is_infinite());
    }
}
