//! # pp-isa — instruction set for the PolyPath simulator
//!
//! A small 64-bit RISC instruction set used by the PolyPath reproduction.
//! It stands in for the Alpha ISA used by the original paper: what matters
//! for Selective Eager Execution is dynamic *control-flow behaviour*
//! (conditional branches with data-dependent outcomes, calls/returns,
//! loads/stores feeding branch conditions), not any particular encoding.
//!
//! The crate provides:
//!
//! * [`Op`] — the instruction forms (ALU, load/store, branch, jump,
//!   call/return, FP, halt),
//! * [`Program`] — executable code plus initial data segments,
//! * [`Asm`] — a label-resolving assembler/builder used to write workloads,
//! * shared evaluation helpers ([`alu_eval`], [`cond_eval`], [`fp_eval`])
//!   so the functional emulator and the pipeline's execution units agree
//!   bit-for-bit on semantics (including wrong-path corner cases such as
//!   division by zero, which must not trap).
//!
//! Program counters are instruction indices, not byte addresses; memory
//! data addresses are byte addresses in a flat 64-bit space.
//!
//! ```
//! use pp_isa::{Asm, Cond, Operand, reg};
//!
//! # fn main() -> Result<(), pp_isa::AsmError> {
//! let mut a = Asm::new();
//! let top = a.new_label();
//! a.li(reg::T0, 0);
//! a.bind(top)?;
//! a.addi(reg::T0, reg::T0, 1);
//! a.br(Cond::Lt, reg::T0, Operand::imm(10), top);
//! a.halt();
//! let program = a.assemble()?;
//! assert_eq!(program.code.len(), 4);
//! # Ok(())
//! # }
//! ```

mod asm;
mod eval;
mod op;
mod parse;
mod program;

pub use asm::{Asm, AsmError, Label};
pub use eval::{alu_eval, cond_eval, fp_eval};
pub use op::{AluOp, Cond, FpOp, InstClass, Op, Operand, Reg, Width, NUM_LOGICAL_REGS};
pub use parse::{parse_asm, parse_reg, ParseError};
pub use program::{DataSegment, Program, DATA_BASE, STACK_TOP};

/// Well-known register names, mirroring a conventional RISC ABI.
///
/// Integer registers are `r0`–`r31` with `r0` hardwired to zero; floating
/// point registers are `f0`–`f31` (register indices 32–63 internally).
pub mod reg {
    use crate::op::Reg;

    /// Hardwired zero register. Writes are discarded, reads yield `0`.
    pub const ZERO: Reg = Reg::int(0);
    /// Return address, written by `call`, consumed by `ret`.
    pub const RA: Reg = Reg::int(1);
    /// Stack pointer.
    pub const SP: Reg = Reg::int(2);
    /// Global/data pointer.
    pub const GP: Reg = Reg::int(3);

    /// Argument/result registers.
    pub const A0: Reg = Reg::int(4);
    pub const A1: Reg = Reg::int(5);
    pub const A2: Reg = Reg::int(6);
    pub const A3: Reg = Reg::int(7);
    pub const A4: Reg = Reg::int(8);
    pub const A5: Reg = Reg::int(9);

    /// Caller-saved temporaries.
    pub const T0: Reg = Reg::int(10);
    pub const T1: Reg = Reg::int(11);
    pub const T2: Reg = Reg::int(12);
    pub const T3: Reg = Reg::int(13);
    pub const T4: Reg = Reg::int(14);
    pub const T5: Reg = Reg::int(15);
    pub const T6: Reg = Reg::int(16);
    pub const T7: Reg = Reg::int(17);
    pub const T8: Reg = Reg::int(18);
    pub const T9: Reg = Reg::int(19);

    /// Callee-saved registers.
    pub const S0: Reg = Reg::int(20);
    pub const S1: Reg = Reg::int(21);
    pub const S2: Reg = Reg::int(22);
    pub const S3: Reg = Reg::int(23);
    pub const S4: Reg = Reg::int(24);
    pub const S5: Reg = Reg::int(25);
    pub const S6: Reg = Reg::int(26);
    pub const S7: Reg = Reg::int(27);
    pub const S8: Reg = Reg::int(28);
    pub const S9: Reg = Reg::int(29);
    pub const S10: Reg = Reg::int(30);
    pub const S11: Reg = Reg::int(31);

    /// Floating point registers.
    pub const F0: Reg = Reg::fp(0);
    pub const F1: Reg = Reg::fp(1);
    pub const F2: Reg = Reg::fp(2);
    pub const F3: Reg = Reg::fp(3);
    pub const F4: Reg = Reg::fp(4);
    pub const F5: Reg = Reg::fp(5);
    pub const F6: Reg = Reg::fp(6);
    pub const F7: Reg = Reg::fp(7);
}
