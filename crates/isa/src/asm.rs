//! A label-resolving assembler/builder for writing workload programs.
//!
//! Instructions are appended through convenience methods; branch and jump
//! targets are [`Label`]s that may be bound before or after use. A data
//! allocator hands out static memory starting at [`crate::DATA_BASE`].
//!
//! ```
//! use pp_isa::{Asm, Cond, Operand, reg};
//!
//! # fn main() -> Result<(), pp_isa::AsmError> {
//! let mut a = Asm::new();
//! let table = a.alloc_words(&[3, 1, 4, 1, 5]);
//! let done = a.new_label();
//! a.li(reg::T0, table as i64);
//! a.ld(reg::T1, reg::T0, 0);
//! a.br(Cond::Eq, reg::T1, Operand::imm(0), done);
//! a.bind(done)?;
//! a.halt();
//! let program = a.assemble()?;
//! assert_eq!(program.code.len(), 4);
//! # Ok(())
//! # }
//! ```

use std::fmt;

use crate::op::{AluOp, Cond, FpOp, Op, Operand, Reg, Width};
use crate::program::{DataSegment, Program, DATA_BASE};

/// A code position that may be referenced before it is bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Errors produced while building or assembling a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was used as a branch/jump target but never bound.
    UnboundLabel(Label),
    /// [`Asm::bind`] was called twice for the same label.
    RebindLabel(Label),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel(l) => write!(f, "label L{} was referenced but never bound", l.0),
            AsmError::RebindLabel(l) => write!(f, "label L{} was bound more than once", l.0),
        }
    }
}

impl std::error::Error for AsmError {}

/// Instruction-stream builder with label resolution and a data allocator.
#[derive(Debug, Clone, Default)]
pub struct Asm {
    code: Vec<PendingOp>,
    labels: Vec<Option<usize>>,
    label_names: Vec<Option<String>>,
    data: Vec<DataSegment>,
    data_cursor: u64,
    entry: usize,
}

/// An op whose control-flow target may still be an unresolved label.
#[derive(Debug, Clone)]
enum PendingOp {
    Ready(Op),
    Branch {
        cond: Cond,
        rs1: Reg,
        src2: Operand,
        target: Label,
    },
    Jump {
        target: Label,
    },
    Call {
        target: Label,
    },
}

impl Asm {
    /// New empty builder. The data allocator starts at [`DATA_BASE`].
    pub fn new() -> Self {
        Asm {
            data_cursor: DATA_BASE,
            ..Default::default()
        }
    }

    /// Create a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        self.label_names.push(None);
        Label(self.labels.len() - 1)
    }

    /// Create a fresh label with a name (shown in listings).
    pub fn new_named_label(&mut self, name: &str) -> Label {
        let l = self.new_label();
        self.label_names[l.0] = Some(name.to_string());
        l
    }

    /// Bind `label` to the current code position.
    ///
    /// # Errors
    /// Returns [`AsmError::RebindLabel`] if the label was already bound.
    pub fn bind(&mut self, label: Label) -> Result<(), AsmError> {
        if self.labels[label.0].is_some() {
            return Err(AsmError::RebindLabel(label));
        }
        self.labels[label.0] = Some(self.code.len());
        Ok(())
    }

    /// Convenience: create a label and bind it here.
    pub fn here(&mut self) -> Label {
        let l = self.new_label();
        self.bind(l).expect("fresh label cannot be bound");
        l
    }

    /// Convenience: create a named label and bind it here.
    pub fn here_named(&mut self, name: &str) -> Label {
        let l = self.new_named_label(name);
        self.bind(l).expect("fresh label cannot be bound");
        l
    }

    /// Current code position (index of the next emitted instruction).
    pub fn pc(&self) -> usize {
        self.code.len()
    }

    /// Set the program entry point to the current position.
    pub fn set_entry_here(&mut self) {
        self.entry = self.code.len();
    }

    /// Allocate `words.len()` 64-bit words of initialized static data;
    /// returns the base byte address.
    pub fn alloc_words(&mut self, words: &[i64]) -> u64 {
        let base = self.data_cursor;
        self.data.push(DataSegment::from_words(base, words));
        self.data_cursor += words.len() as u64 * 8;
        base
    }

    /// Allocate raw initialized bytes; returns the base byte address.
    pub fn alloc_bytes(&mut self, bytes: &[u8]) -> u64 {
        let base = self.data_cursor;
        self.data.push(DataSegment {
            base,
            bytes: bytes.to_vec(),
        });
        // Keep subsequent words 8-byte aligned.
        self.data_cursor += (bytes.len() as u64).next_multiple_of(8);
        base
    }

    /// Reserve `words` zero-initialized 64-bit words; returns the base address.
    pub fn alloc_zeroed(&mut self, words: usize) -> u64 {
        let base = self.data_cursor;
        // Zero is the memory default; just advance the cursor.
        self.data_cursor += words as u64 * 8;
        base
    }

    /// Append a raw instruction.
    pub fn emit(&mut self, op: Op) {
        self.code.push(PendingOp::Ready(op));
    }

    // --- convenience emitters -------------------------------------------

    /// `rd = rs1 <op> src2`
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, src2: impl Into<Operand>) {
        self.emit(Op::Alu {
            op,
            rd,
            rs1,
            src2: src2.into(),
        });
    }

    /// `rd = rs1 + src2`
    pub fn add(&mut self, rd: Reg, rs1: Reg, src2: impl Into<Operand>) {
        self.alu(AluOp::Add, rd, rs1, src2);
    }

    /// `rd = rs1 + imm`
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.alu(AluOp::Add, rd, rs1, Operand::imm(imm));
    }

    /// `rd = rs1 - src2`
    pub fn sub(&mut self, rd: Reg, rs1: Reg, src2: impl Into<Operand>) {
        self.alu(AluOp::Sub, rd, rs1, src2);
    }

    /// `rd = rs1 * src2`
    pub fn mul(&mut self, rd: Reg, rs1: Reg, src2: impl Into<Operand>) {
        self.alu(AluOp::Mul, rd, rs1, src2);
    }

    /// `rd = rs1 / src2` (0 on division by zero)
    pub fn div(&mut self, rd: Reg, rs1: Reg, src2: impl Into<Operand>) {
        self.alu(AluOp::Div, rd, rs1, src2);
    }

    /// `rd = rs1 % src2` (0 on division by zero)
    pub fn rem(&mut self, rd: Reg, rs1: Reg, src2: impl Into<Operand>) {
        self.alu(AluOp::Rem, rd, rs1, src2);
    }

    /// `rd = rs1 & src2`
    pub fn and(&mut self, rd: Reg, rs1: Reg, src2: impl Into<Operand>) {
        self.alu(AluOp::And, rd, rs1, src2);
    }

    /// `rd = rs1 | src2`
    pub fn or(&mut self, rd: Reg, rs1: Reg, src2: impl Into<Operand>) {
        self.alu(AluOp::Or, rd, rs1, src2);
    }

    /// `rd = rs1 ^ src2`
    pub fn xor(&mut self, rd: Reg, rs1: Reg, src2: impl Into<Operand>) {
        self.alu(AluOp::Xor, rd, rs1, src2);
    }

    /// `rd = rs1 << src2`
    pub fn sll(&mut self, rd: Reg, rs1: Reg, src2: impl Into<Operand>) {
        self.alu(AluOp::Sll, rd, rs1, src2);
    }

    /// `rd = rs1 >> src2` (logical)
    pub fn srl(&mut self, rd: Reg, rs1: Reg, src2: impl Into<Operand>) {
        self.alu(AluOp::Srl, rd, rs1, src2);
    }

    /// `rd = rs1 >> src2` (arithmetic)
    pub fn sra(&mut self, rd: Reg, rs1: Reg, src2: impl Into<Operand>) {
        self.alu(AluOp::Sra, rd, rs1, src2);
    }

    /// `rd = (rs1 < src2) as i64` (signed)
    pub fn slt(&mut self, rd: Reg, rs1: Reg, src2: impl Into<Operand>) {
        self.alu(AluOp::Slt, rd, rs1, src2);
    }

    /// `rd = imm`
    pub fn li(&mut self, rd: Reg, imm: i64) {
        self.emit(Op::Li { rd, imm });
    }

    /// `rd = rs` (encoded as `rd = rs + 0`)
    pub fn mov(&mut self, rd: Reg, rs: Reg) {
        self.addi(rd, rs, 0);
    }

    /// `rd = mem64[base + offset]`
    pub fn ld(&mut self, rd: Reg, base: Reg, offset: i64) {
        self.emit(Op::Load {
            rd,
            base,
            offset,
            width: Width::Word,
        });
    }

    /// `rd = mem8[base + offset]` (zero-extended)
    pub fn ldb(&mut self, rd: Reg, base: Reg, offset: i64) {
        self.emit(Op::Load {
            rd,
            base,
            offset,
            width: Width::Byte,
        });
    }

    /// `mem64[base + offset] = src`
    pub fn st(&mut self, src: Reg, base: Reg, offset: i64) {
        self.emit(Op::Store {
            src,
            base,
            offset,
            width: Width::Word,
        });
    }

    /// `mem8[base + offset] = src & 0xff`
    pub fn stb(&mut self, src: Reg, base: Reg, offset: i64) {
        self.emit(Op::Store {
            src,
            base,
            offset,
            width: Width::Byte,
        });
    }

    /// Conditional branch to `target` if `rs1 <cond> src2`.
    pub fn br(&mut self, cond: Cond, rs1: Reg, src2: impl Into<Operand>, target: Label) {
        self.code.push(PendingOp::Branch {
            cond,
            rs1,
            src2: src2.into(),
            target,
        });
    }

    /// Branch if `rs1 == src2`.
    pub fn beq(&mut self, rs1: Reg, src2: impl Into<Operand>, target: Label) {
        self.br(Cond::Eq, rs1, src2, target);
    }

    /// Branch if `rs1 != src2`.
    pub fn bne(&mut self, rs1: Reg, src2: impl Into<Operand>, target: Label) {
        self.br(Cond::Ne, rs1, src2, target);
    }

    /// Branch if `rs1 < src2` (signed).
    pub fn blt(&mut self, rs1: Reg, src2: impl Into<Operand>, target: Label) {
        self.br(Cond::Lt, rs1, src2, target);
    }

    /// Branch if `rs1 <= src2` (signed).
    pub fn ble(&mut self, rs1: Reg, src2: impl Into<Operand>, target: Label) {
        self.br(Cond::Le, rs1, src2, target);
    }

    /// Branch if `rs1 > src2` (signed).
    pub fn bgt(&mut self, rs1: Reg, src2: impl Into<Operand>, target: Label) {
        self.br(Cond::Gt, rs1, src2, target);
    }

    /// Branch if `rs1 >= src2` (signed).
    pub fn bge(&mut self, rs1: Reg, src2: impl Into<Operand>, target: Label) {
        self.br(Cond::Ge, rs1, src2, target);
    }

    /// Unconditional jump.
    pub fn jmp(&mut self, target: Label) {
        self.code.push(PendingOp::Jump { target });
    }

    /// Direct call (`ra = pc + 1; pc = target`).
    pub fn call(&mut self, target: Label) {
        self.code.push(PendingOp::Call { target });
    }

    /// Return (`pc = ra`).
    pub fn ret(&mut self) {
        self.emit(Op::Ret);
    }

    /// Indirect jump (`pc = rs`), predicted through the BTB.
    pub fn jr(&mut self, rs: Reg) {
        self.emit(Op::Jr { rs });
    }

    /// Floating point operation `fd = fs1 <op> fs2`.
    pub fn fp(&mut self, op: FpOp, fd: Reg, fs1: Reg, fs2: Reg) {
        self.emit(Op::Fp { op, fd, fs1, fs2 });
    }

    /// Stop the program.
    pub fn halt(&mut self) {
        self.emit(Op::Halt);
    }

    /// No operation.
    pub fn nop(&mut self) {
        self.emit(Op::Nop);
    }

    /// Resolve all labels and produce the final [`Program`].
    ///
    /// # Errors
    /// Returns [`AsmError::UnboundLabel`] if any referenced label was never
    /// bound.
    pub fn assemble(&self) -> Result<Program, AsmError> {
        let resolve = |l: Label| -> Result<usize, AsmError> {
            self.labels[l.0].ok_or(AsmError::UnboundLabel(l))
        };
        let mut code = Vec::with_capacity(self.code.len());
        for p in &self.code {
            code.push(match *p {
                PendingOp::Ready(op) => op,
                PendingOp::Branch {
                    cond,
                    rs1,
                    src2,
                    target,
                } => Op::Branch {
                    cond,
                    rs1,
                    src2,
                    target: resolve(target)?,
                },
                PendingOp::Jump { target } => Op::Jump {
                    target: resolve(target)?,
                },
                PendingOp::Call { target } => Op::Call {
                    target: resolve(target)?,
                },
            });
        }
        let mut labels: Vec<(usize, String)> = self
            .labels
            .iter()
            .zip(&self.label_names)
            .filter_map(|(pos, name)| match (pos, name) {
                (Some(pc), Some(n)) => Some((*pc, n.clone())),
                _ => None,
            })
            .collect();
        labels.sort();
        Ok(Program {
            code,
            data: self.data.clone(),
            entry: self.entry,
            labels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Asm::new();
        let fwd = a.new_label();
        let back = a.here();
        a.addi(reg::T0, reg::T0, 1);
        a.blt(reg::T0, Operand::imm(3), back);
        a.jmp(fwd);
        a.nop();
        a.bind(fwd).unwrap();
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(
            p.code[1],
            Op::Branch {
                cond: Cond::Lt,
                rs1: reg::T0,
                src2: Operand::imm(3),
                target: 0
            }
        );
        assert_eq!(p.code[2], Op::Jump { target: 4 });
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut a = Asm::new();
        let l = a.new_label();
        a.jmp(l);
        assert!(matches!(a.assemble(), Err(AsmError::UnboundLabel(_))));
    }

    #[test]
    fn rebind_is_an_error() {
        let mut a = Asm::new();
        let l = a.here();
        assert_eq!(a.bind(l), Err(AsmError::RebindLabel(l)));
    }

    #[test]
    fn error_display_is_meaningful() {
        let e = AsmError::UnboundLabel(Label(3));
        assert!(e.to_string().contains("L3"));
        let e = AsmError::RebindLabel(Label(1));
        assert!(e.to_string().contains("more than once"));
    }

    #[test]
    fn data_allocator_is_sequential_and_aligned() {
        let mut a = Asm::new();
        let x = a.alloc_words(&[1, 2, 3]);
        let y = a.alloc_bytes(&[1, 2, 3]); // 3 bytes, padded to 8
        let z = a.alloc_zeroed(2);
        let w = a.alloc_words(&[9]);
        assert_eq!(x, DATA_BASE);
        assert_eq!(y, DATA_BASE + 24);
        assert_eq!(z, DATA_BASE + 32);
        assert_eq!(w, DATA_BASE + 48);
    }

    #[test]
    fn named_labels_appear_in_listing() {
        let mut a = Asm::new();
        a.here_named("main");
        a.halt();
        let p = a.assemble().unwrap();
        assert!(p.listing().contains("main:"));
    }

    #[test]
    fn call_and_ret_emit() {
        let mut a = Asm::new();
        let f = a.new_label();
        a.call(f);
        a.halt();
        a.bind(f).unwrap();
        a.ret();
        let p = a.assemble().unwrap();
        assert_eq!(p.code[0], Op::Call { target: 2 });
        assert_eq!(p.code[2], Op::Ret);
    }

    #[test]
    fn mov_encodes_as_addi_zero() {
        let mut a = Asm::new();
        a.mov(reg::T1, reg::T0);
        let p = a.assemble().unwrap();
        assert_eq!(
            p.code[0],
            Op::Alu {
                op: AluOp::Add,
                rd: reg::T1,
                rs1: reg::T0,
                src2: Operand::imm(0)
            }
        );
    }

    #[test]
    fn entry_point_can_be_moved() {
        let mut a = Asm::new();
        a.nop();
        a.set_entry_here();
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(p.entry, 1);
    }

    #[test]
    fn all_convenience_branches_emit_right_cond() {
        let mut a = Asm::new();
        let l = a.here();
        a.beq(reg::T0, 0i64, l);
        a.bne(reg::T0, 0i64, l);
        a.blt(reg::T0, 0i64, l);
        a.ble(reg::T0, 0i64, l);
        a.bgt(reg::T0, 0i64, l);
        a.bge(reg::T0, 0i64, l);
        let p = a.assemble().unwrap();
        let conds: Vec<Cond> = p
            .code
            .iter()
            .map(|op| match op {
                Op::Branch { cond, .. } => *cond,
                _ => panic!("expected branch"),
            })
            .collect();
        assert_eq!(
            conds,
            vec![Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge]
        );
    }
}
