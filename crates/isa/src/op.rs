//! Instruction forms, registers, and operand types.

use std::fmt;

/// Number of architectural (logical) registers: 32 integer + 32 floating point.
pub const NUM_LOGICAL_REGS: usize = 64;

/// An architectural register.
///
/// Indices `0..32` are integer registers (`r0` hardwired to zero), indices
/// `32..64` are floating point registers. The single flat namespace keeps the
/// register-renaming machinery in the pipeline uniform, exactly as a unified
/// physical register file would.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Integer register `r{n}`.
    ///
    /// # Panics
    /// Panics if `n >= 32`.
    pub const fn int(n: u8) -> Self {
        assert!(n < 32, "integer register index out of range");
        Reg(n)
    }

    /// Floating point register `f{n}`.
    ///
    /// # Panics
    /// Panics if `n >= 32`.
    pub const fn fp(n: u8) -> Self {
        assert!(n < 32, "fp register index out of range");
        Reg(n + 32)
    }

    /// Flat index into the 64-entry logical register space.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a flat index.
    ///
    /// # Panics
    /// Panics if `idx >= 64`.
    pub fn from_index(idx: usize) -> Self {
        assert!(idx < NUM_LOGICAL_REGS, "register index out of range");
        Reg(idx as u8)
    }

    /// `true` for the hardwired-zero integer register `r0`.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `true` for floating point registers.
    pub const fn is_fp(self) -> bool {
        self.0 >= 32
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_fp() {
            write!(f, "f{}", self.0 - 32)
        } else {
            write!(f, "r{}", self.0)
        }
    }
}

/// Integer ALU operations.
///
/// All arithmetic is two's-complement wrapping on 64 bits. Division and
/// remainder by zero yield `0` — instructions on mis-speculated paths execute
/// with whatever values the datapath holds and must never trap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    Add,
    Sub,
    /// Integer multiply (higher latency; executes on the IntType0 pipe,
    /// mirroring the Alpha 21164's E0 multiplier).
    Mul,
    /// Signed division; division by zero yields 0.
    Div,
    /// Signed remainder; remainder by zero yields 0.
    Rem,
    And,
    Or,
    Xor,
    /// Shift left logical (shift amount taken mod 64).
    Sll,
    /// Shift right logical (shift amount taken mod 64).
    Srl,
    /// Shift right arithmetic (shift amount taken mod 64).
    Sra,
    /// Set-less-than, signed: `rd = (rs1 < src2) as i64`.
    Slt,
    /// Set-less-than, unsigned.
    Sltu,
}

impl AluOp {
    /// All ALU operations, useful for exhaustive tests.
    pub const ALL: [AluOp; 13] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Slt,
        AluOp::Sltu,
    ];

    fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
        }
    }
}

/// Floating point operations on f64 values stored bit-for-bit in registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpOp {
    Add,
    Sub,
    Mul,
    Div,
    /// Convert integer source to f64.
    Itof,
    /// Convert f64 source to integer (saturating, NaN maps to 0).
    Ftoi,
}

impl FpOp {
    /// All FP operations, useful for exhaustive tests.
    pub const ALL: [FpOp; 6] = [
        FpOp::Add,
        FpOp::Sub,
        FpOp::Mul,
        FpOp::Div,
        FpOp::Itof,
        FpOp::Ftoi,
    ];

    fn mnemonic(self) -> &'static str {
        match self {
            FpOp::Add => "fadd",
            FpOp::Sub => "fsub",
            FpOp::Mul => "fmul",
            FpOp::Div => "fdiv",
            FpOp::Itof => "itof",
            FpOp::Ftoi => "ftoi",
        }
    }
}

/// Branch comparison conditions (`rs1 <cond> src2`, signed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Cond {
    /// All conditions, useful for exhaustive tests.
    pub const ALL: [Cond; 6] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge];

    /// The condition testing the opposite outcome.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "beq",
            Cond::Ne => "bne",
            Cond::Lt => "blt",
            Cond::Le => "ble",
            Cond::Gt => "bgt",
            Cond::Ge => "bge",
        }
    }
}

/// Memory access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// One byte, zero-extended on load.
    Byte,
    /// Eight bytes (a 64-bit word).
    Word,
}

impl Width {
    /// Access size in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            Width::Byte => 1,
            Width::Word => 8,
        }
    }
}

/// The second source of an ALU or branch instruction: register or immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    Reg(Reg),
    Imm(i64),
}

impl Operand {
    /// Immediate operand.
    pub const fn imm(v: i64) -> Self {
        Operand::Imm(v)
    }

    /// The register read by this operand, if any.
    pub fn reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// A decoded instruction.
///
/// `target` fields are instruction indices into [`crate::Program::code`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// `rd = rs1 <op> src2`
    Alu {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        src2: Operand,
    },
    /// `rd = imm`
    Li { rd: Reg, imm: i64 },
    /// `rd = mem[base + offset]`
    Load {
        rd: Reg,
        base: Reg,
        offset: i64,
        width: Width,
    },
    /// `mem[base + offset] = src`
    Store {
        src: Reg,
        base: Reg,
        offset: i64,
        width: Width,
    },
    /// Conditional branch to `target` if `rs1 <cond> src2`.
    Branch {
        cond: Cond,
        rs1: Reg,
        src2: Operand,
        target: usize,
    },
    /// Unconditional direct jump.
    Jump { target: usize },
    /// Direct call: `ra = pc + 1; pc = target`.
    Call { target: usize },
    /// Return: `pc = ra`.
    Ret,
    /// Indirect jump: `pc = rs` (predicted through the BTB).
    Jr { rs: Reg },
    /// `fd = fs1 <op> fs2` (for `Itof`/`Ftoi` only `fs1` is read).
    Fp {
        op: FpOp,
        fd: Reg,
        fs1: Reg,
        fs2: Reg,
    },
    /// Stop the program.
    Halt,
    /// No operation.
    Nop,
}

/// Coarse instruction classification used for functional unit assignment
/// and latency selection in the pipeline model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// Simple integer arithmetic/logic (1 cycle on either integer pipe).
    IntAlu,
    /// Integer multiply (long latency, IntType0 pipe only, like 21164 E0).
    IntMul,
    /// Integer divide/remainder (long latency, IntType0 pipe only).
    IntDiv,
    /// Conditional branch (IntType1 pipe only, like 21164 E1).
    Branch,
    /// Unconditional control transfer (`jump`/`call`/`ret`).
    Jump,
    /// Memory load (address generation + D-cache port).
    Load,
    /// Memory store (address generation + D-cache port at commit).
    Store,
    /// FP add/sub/convert (FPAdd pipe).
    FpAdd,
    /// FP multiply (FPMult pipe).
    FpMul,
    /// FP divide (FPMult pipe, long latency, not pipelined).
    FpDiv,
    /// Program end marker.
    Halt,
    /// No-op (consumes an integer pipe slot).
    Nop,
}

impl Op {
    /// The functional-unit class of this instruction.
    pub fn class(&self) -> InstClass {
        match self {
            Op::Alu { op, .. } => match op {
                AluOp::Mul => InstClass::IntMul,
                AluOp::Div | AluOp::Rem => InstClass::IntDiv,
                _ => InstClass::IntAlu,
            },
            Op::Li { .. } => InstClass::IntAlu,
            Op::Load { .. } => InstClass::Load,
            Op::Store { .. } => InstClass::Store,
            Op::Branch { .. } => InstClass::Branch,
            Op::Jump { .. } | Op::Call { .. } | Op::Ret | Op::Jr { .. } => InstClass::Jump,
            Op::Fp { op, .. } => match op {
                FpOp::Mul => InstClass::FpMul,
                FpOp::Div => InstClass::FpDiv,
                _ => InstClass::FpAdd,
            },
            Op::Halt => InstClass::Halt,
            Op::Nop => InstClass::Nop,
        }
    }

    /// Destination register written by this instruction, if any.
    ///
    /// Writes to the hardwired zero register are reported as `None`
    /// (they are architecturally discarded).
    pub fn dest(&self) -> Option<Reg> {
        let d = match self {
            Op::Alu { rd, .. } | Op::Li { rd, .. } | Op::Load { rd, .. } => Some(*rd),
            Op::Fp { fd, .. } => Some(*fd),
            Op::Call { .. } => Some(crate::reg::RA),
            _ => None,
        };
        d.filter(|r| !r.is_zero())
    }

    /// Source registers read by this instruction (up to two).
    pub fn sources(&self) -> [Option<Reg>; 2] {
        let norm = |r: Reg| if r.is_zero() { None } else { Some(r) };
        match self {
            Op::Alu { rs1, src2, .. } => [norm(*rs1), src2.reg().and_then(norm)],
            Op::Li { .. } => [None, None],
            Op::Load { base, .. } => [norm(*base), None],
            Op::Store { src, base, .. } => [norm(*base), norm(*src)],
            Op::Branch { rs1, src2, .. } => [norm(*rs1), src2.reg().and_then(norm)],
            Op::Jump { .. } | Op::Call { .. } => [None, None],
            Op::Ret => [Some(crate::reg::RA), None],
            Op::Jr { rs } => [norm(*rs), None],
            Op::Fp { op, fs1, fs2, .. } => match op {
                FpOp::Itof | FpOp::Ftoi => [norm(*fs1), None],
                _ => [norm(*fs1), norm(*fs2)],
            },
            Op::Halt | Op::Nop => [None, None],
        }
    }

    /// `true` for conditional branches (the instructions SEE may diverge on).
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Op::Branch { .. })
    }

    /// `true` for any control-transfer instruction.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Op::Branch { .. } | Op::Jump { .. } | Op::Call { .. } | Op::Ret | Op::Jr { .. }
        )
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Alu { op, rd, rs1, src2 } => {
                write!(f, "{} {rd}, {rs1}, {src2}", op.mnemonic())
            }
            Op::Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Op::Load {
                rd,
                base,
                offset,
                width,
            } => {
                let m = if *width == Width::Byte { "ldb" } else { "ld" };
                write!(f, "{m} {rd}, {offset}({base})")
            }
            Op::Store {
                src,
                base,
                offset,
                width,
            } => {
                let m = if *width == Width::Byte { "stb" } else { "st" };
                write!(f, "{m} {src}, {offset}({base})")
            }
            Op::Branch {
                cond,
                rs1,
                src2,
                target,
            } => write!(f, "{} {rs1}, {src2}, @{target}", cond.mnemonic()),
            Op::Jump { target } => write!(f, "jmp @{target}"),
            Op::Call { target } => write!(f, "call @{target}"),
            Op::Ret => write!(f, "ret"),
            Op::Jr { rs } => write!(f, "jr {rs}"),
            Op::Fp { op, fd, fs1, fs2 } => match op {
                FpOp::Itof | FpOp::Ftoi => write!(f, "{} {fd}, {fs1}", op.mnemonic()),
                _ => write!(f, "{} {fd}, {fs1}, {fs2}", op.mnemonic()),
            },
            Op::Halt => write!(f, "halt"),
            Op::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg;

    #[test]
    fn reg_display_and_class() {
        assert_eq!(reg::T0.to_string(), "r10");
        assert_eq!(reg::F1.to_string(), "f1");
        assert!(reg::F0.is_fp());
        assert!(!reg::T0.is_fp());
        assert!(reg::ZERO.is_zero());
    }

    #[test]
    fn reg_flat_index_roundtrip() {
        for idx in 0..NUM_LOGICAL_REGS {
            assert_eq!(Reg::from_index(idx).index(), idx);
        }
    }

    #[test]
    #[should_panic(expected = "register index out of range")]
    fn reg_from_index_rejects_out_of_range() {
        let _ = Reg::from_index(64);
    }

    #[test]
    fn zero_register_writes_are_discarded() {
        let op = Op::Alu {
            op: AluOp::Add,
            rd: reg::ZERO,
            rs1: reg::T0,
            src2: Operand::imm(1),
        };
        assert_eq!(op.dest(), None);
    }

    #[test]
    fn zero_register_reads_are_not_dependencies() {
        let op = Op::Alu {
            op: AluOp::Add,
            rd: reg::T1,
            rs1: reg::ZERO,
            src2: Operand::Reg(reg::ZERO),
        };
        assert_eq!(op.sources(), [None, None]);
    }

    #[test]
    fn call_writes_ra_and_ret_reads_it() {
        assert_eq!(Op::Call { target: 3 }.dest(), Some(reg::RA));
        assert_eq!(Op::Ret.sources()[0], Some(reg::RA));
    }

    #[test]
    fn classes() {
        let alu = Op::Alu {
            op: AluOp::Add,
            rd: reg::T0,
            rs1: reg::T1,
            src2: Operand::imm(1),
        };
        assert_eq!(alu.class(), InstClass::IntAlu);
        let mul = Op::Alu {
            op: AluOp::Mul,
            rd: reg::T0,
            rs1: reg::T1,
            src2: Operand::imm(2),
        };
        assert_eq!(mul.class(), InstClass::IntMul);
        let div = Op::Alu {
            op: AluOp::Div,
            rd: reg::T0,
            rs1: reg::T1,
            src2: Operand::imm(2),
        };
        assert_eq!(div.class(), InstClass::IntDiv);
        assert_eq!(Op::Ret.class(), InstClass::Jump);
        assert_eq!(
            Op::Fp {
                op: FpOp::Mul,
                fd: reg::F0,
                fs1: reg::F1,
                fs2: reg::F2
            }
            .class(),
            InstClass::FpMul
        );
    }

    #[test]
    fn cond_negation_is_involutive() {
        for c in Cond::ALL {
            assert_eq!(c.negate().negate(), c);
        }
    }

    #[test]
    fn display_formats() {
        let op = Op::Branch {
            cond: Cond::Lt,
            rs1: reg::T0,
            src2: Operand::imm(5),
            target: 7,
        };
        assert_eq!(op.to_string(), "blt r10, 5, @7");
        let ld = Op::Load {
            rd: reg::T1,
            base: reg::SP,
            offset: -8,
            width: Width::Word,
        };
        assert_eq!(ld.to_string(), "ld r11, -8(r2)");
    }

    #[test]
    fn operand_conversions() {
        let o: Operand = reg::T0.into();
        assert_eq!(o.reg(), Some(reg::T0));
        let o: Operand = 42i64.into();
        assert_eq!(o.reg(), None);
    }

    #[test]
    fn branch_is_cond_branch() {
        let b = Op::Branch {
            cond: Cond::Eq,
            rs1: reg::T0,
            src2: Operand::imm(0),
            target: 0,
        };
        assert!(b.is_cond_branch());
        assert!(b.is_control());
        assert!(Op::Ret.is_control());
        assert!(!Op::Ret.is_cond_branch());
        assert!(!Op::Nop.is_control());
    }

    #[test]
    fn width_bytes() {
        assert_eq!(Width::Byte.bytes(), 1);
        assert_eq!(Width::Word.bytes(), 8);
    }
}
