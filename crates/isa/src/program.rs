//! Executable program representation.

use std::fmt;

use crate::op::Op;

/// Conventional base address of the static data region created by the
/// assembler's data allocator.
pub const DATA_BASE: u64 = 0x1000_0000;

/// Conventional initial stack pointer (stack grows toward lower addresses).
pub const STACK_TOP: u64 = 0x7fff_0000;

/// An initialized region of memory, loaded before execution starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataSegment {
    /// Byte address of the first byte of the segment.
    pub base: u64,
    /// Raw contents.
    pub bytes: Vec<u8>,
}

impl DataSegment {
    /// A segment of 64-bit little-endian words starting at `base`.
    pub fn from_words(base: u64, words: &[i64]) -> Self {
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        DataSegment { base, bytes }
    }

    /// Exclusive end address of the segment.
    pub fn end(&self) -> u64 {
        self.base + self.bytes.len() as u64
    }
}

/// An assembled program: code, initial data, entry point, and optional
/// label names for disassembly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// Instructions, addressed by index (the simulator's PC space).
    pub code: Vec<Op>,
    /// Initial memory contents.
    pub data: Vec<DataSegment>,
    /// Index of the first instruction to execute.
    pub entry: usize,
    /// `(pc, name)` pairs for human-readable listings, sorted by `pc`.
    pub labels: Vec<(usize, String)>,
}

impl Program {
    /// Instruction at `pc`, or `None` past the end of the text section.
    ///
    /// Fetching past the end is possible on mis-speculated paths; the
    /// pipeline treats it as fetching a halt-like bubble.
    pub fn fetch(&self, pc: usize) -> Option<Op> {
        self.code.get(pc).copied()
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// `true` when the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Human-readable listing with labels interleaved, one instruction per line.
    pub fn listing(&self) -> String {
        let mut out = String::new();
        let mut li = 0;
        for (pc, op) in self.code.iter().enumerate() {
            while li < self.labels.len() && self.labels[li].0 == pc {
                out.push_str(&format!("{}:\n", self.labels[li].1));
                li += 1;
            }
            out.push_str(&format!("  {pc:5}  {op}\n"));
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.listing())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{AluOp, Operand};
    use crate::reg;

    fn tiny() -> Program {
        Program {
            code: vec![
                Op::Li {
                    rd: reg::T0,
                    imm: 1,
                },
                Op::Alu {
                    op: AluOp::Add,
                    rd: reg::T0,
                    rs1: reg::T0,
                    src2: Operand::imm(2),
                },
                Op::Halt,
            ],
            data: vec![DataSegment::from_words(DATA_BASE, &[10, 20])],
            entry: 0,
            labels: vec![(0, "start".to_string())],
        }
    }

    #[test]
    fn fetch_in_and_out_of_range() {
        let p = tiny();
        assert_eq!(
            p.fetch(0),
            Some(Op::Li {
                rd: reg::T0,
                imm: 1
            })
        );
        assert_eq!(p.fetch(3), None);
    }

    #[test]
    fn segment_from_words_little_endian() {
        let s = DataSegment::from_words(0x100, &[0x0102_0304_0506_0708]);
        assert_eq!(s.bytes, vec![8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(s.end(), 0x108);
    }

    #[test]
    fn listing_contains_labels_and_ops() {
        let p = tiny();
        let l = p.listing();
        assert!(l.contains("start:"));
        assert!(l.contains("li r10, 1"));
        assert!(l.contains("halt"));
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(tiny().len(), 3);
        assert!(!tiny().is_empty());
        assert!(Program::default().is_empty());
    }
}
