//! A textual assembler: parse assembly source into a [`Program`].
//!
//! The builder DSL ([`crate::Asm`]) is what the workload suite uses; this
//! module accepts the same instruction set as human-readable text, which
//! is handier for experiments and examples:
//!
//! ```text
//! ; data directives allocate from DATA_BASE upward
//! .word table, 3, 1, 4, 1, 5      ; named block of 64-bit words
//! .zero scratch, 16               ; 16 zero words
//!
//! main:
//!     la   gp, table              ; load a data block's address
//!     li   t0, 0
//! loop:
//!     sll  t1, t0, 3
//!     add  t1, t1, gp
//!     ld   t2, 0(t1)
//!     add  s1, s1, t2
//!     addi t0, t0, 1
//!     blt  t0, 5, loop
//!     halt
//! ```
//!
//! Comments start with `;` or `#`. Registers accept ABI names (`t0`,
//! `sp`, `f3`, …) or raw `r12` form. Branch/jump targets are labels.

use std::collections::HashMap;
use std::fmt;

use crate::asm::Asm;
use crate::op::{AluOp, Cond, FpOp, Operand, Reg};
use crate::program::Program;

/// A parse failure, with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

/// Parse a register name (`t0`, `sp`, `r17`, `f4`, …).
pub fn parse_reg(s: &str) -> Option<Reg> {
    let s = s.trim().to_ascii_lowercase();
    let named = |idx: u8| Some(Reg::from_index(idx as usize));
    match s.as_str() {
        "zero" => return named(0),
        "ra" => return named(1),
        "sp" => return named(2),
        "gp" => return named(3),
        _ => {}
    }
    if !s.is_ascii() || s.len() < 2 {
        return None;
    }
    let (prefix, num) = s.split_at(1);
    let n: u8 = num.parse().ok()?;
    match prefix {
        "r" if n < 32 => named(n),
        "f" if n < 32 => Some(Reg::fp(n)),
        "a" if n < 6 => named(4 + n),
        "t" if n < 10 => named(10 + n),
        "s" if n < 12 => named(20 + n),
        _ => None,
    }
}

fn parse_imm(s: &str) -> Option<i64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("-0x")) {
        let v = i64::from_str_radix(hex, 16).ok()?;
        return Some(if s.starts_with('-') { -v } else { v });
    }
    s.parse().ok()
}

/// `offset(base)` memory operand.
fn parse_mem(s: &str, line: usize) -> Result<(Reg, i64), ParseError> {
    let s = s.trim();
    let open = s.find('(');
    let close = s.ends_with(')');
    let (Some(open), true) = (open, close) else {
        return err(line, format!("expected offset(base), got `{s}`"));
    };
    let offset = if open == 0 {
        0
    } else {
        match parse_imm(&s[..open]) {
            Some(v) => v,
            None => return err(line, format!("bad offset in `{s}`")),
        }
    };
    let Some(base) = parse_reg(&s[open + 1..s.len() - 1]) else {
        return err(line, format!("bad base register in `{s}`"));
    };
    Ok((base, offset))
}

struct Parser<'a> {
    asm: Asm,
    labels: HashMap<&'a str, crate::asm::Label>,
    data: HashMap<&'a str, u64>,
}

impl<'a> Parser<'a> {
    fn label(&mut self, name: &'a str) -> crate::asm::Label {
        if let Some(l) = self.labels.get(name) {
            *l
        } else {
            let l = self.asm.new_named_label(name);
            self.labels.insert(name, l);
            l
        }
    }

    fn operand(&self, s: &str, line: usize) -> Result<Operand, ParseError> {
        if let Some(r) = parse_reg(s) {
            return Ok(Operand::Reg(r));
        }
        if let Some(v) = parse_imm(s) {
            return Ok(Operand::Imm(v));
        }
        err(line, format!("expected register or immediate, got `{s}`"))
    }

    fn reg(&self, s: &str, line: usize) -> Result<Reg, ParseError> {
        parse_reg(s).ok_or(ParseError {
            line,
            message: format!("expected register, got `{s}`"),
        })
    }
}

/// Parse assembly text into a program.
///
/// # Errors
/// Returns a [`ParseError`] with the offending line on malformed syntax,
/// unknown mnemonics or registers, or unresolved labels.
pub fn parse_asm(source: &str) -> Result<Program, ParseError> {
    let mut p = Parser {
        asm: Asm::new(),
        labels: HashMap::new(),
        data: HashMap::new(),
    };

    for (i, raw) in source.lines().enumerate() {
        let line = i + 1;
        // Strip comments.
        let text = raw.split([';', '#']).next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }

        // Data directives.
        if let Some(rest) = text.strip_prefix(".word") {
            let mut parts = rest.split(',');
            let name = parts.next().map_or("", str::trim);
            if name.is_empty() {
                return err(line, ".word needs a name and values");
            }
            let mut words = Vec::new();
            for w in parts {
                match parse_imm(w) {
                    Some(v) => words.push(v),
                    None => return err(line, format!("bad word value `{}`", w.trim())),
                }
            }
            let base = p.asm.alloc_words(&words);
            p.data.insert(name, base);
            continue;
        }
        if let Some(rest) = text.strip_prefix(".zero") {
            let mut parts = rest.split(',');
            let name = parts.next().map_or("", str::trim);
            let count = parts.next().and_then(parse_imm).unwrap_or(-1);
            if name.is_empty() || count < 0 {
                return err(line, ".zero needs a name and a word count");
            }
            let base = p.asm.alloc_zeroed(count as usize);
            p.data.insert(name, base);
            continue;
        }

        // Labels (possibly followed by an instruction on the same line).
        let mut text = text;
        while let Some(colon) = text.find(':') {
            let (name, rest) = text.split_at(colon);
            let name = name.trim();
            if name.is_empty() || name.contains(char::is_whitespace) {
                return err(line, format!("bad label `{name}`"));
            }
            let l = p.label(name);
            p.asm.bind(l).map_err(|_| ParseError {
                line,
                message: format!("label `{name}` defined twice"),
            })?;
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }

        parse_instruction(&mut p, text, line)?;
    }

    p.asm.assemble().map_err(|e| ParseError {
        line: 0,
        message: e.to_string(),
    })
}

fn parse_instruction<'a>(p: &mut Parser<'a>, text: &'a str, line: usize) -> Result<(), ParseError> {
    let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (text, ""),
    };
    let args: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };
    let want = |n: usize| -> Result<(), ParseError> {
        if args.len() == n {
            Ok(())
        } else {
            err(
                line,
                format!("`{mnemonic}` expects {n} operands, got {}", args.len()),
            )
        }
    };

    let alu3 = |p: &mut Parser<'a>, op: AluOp| -> Result<(), ParseError> {
        let rd = p.reg(args[0], line)?;
        let rs1 = p.reg(args[1], line)?;
        let src2 = p.operand(args[2], line)?;
        p.asm.alu(op, rd, rs1, src2);
        Ok(())
    };
    let branch = |p: &mut Parser<'a>, cond: Cond| -> Result<(), ParseError> {
        let rs1 = p.reg(args[0], line)?;
        let src2 = p.operand(args[1], line)?;
        let target = p.label(args[2]);
        p.asm.br(cond, rs1, src2, target);
        Ok(())
    };
    let fp3 = |p: &mut Parser<'a>, op: FpOp| -> Result<(), ParseError> {
        let fd = p.reg(args[0], line)?;
        let fs1 = p.reg(args[1], line)?;
        let fs2 = p.reg(args[2], line)?;
        p.asm.fp(op, fd, fs1, fs2);
        Ok(())
    };

    match mnemonic.to_ascii_lowercase().as_str() {
        "add" | "addi" => {
            want(3)?;
            alu3(p, AluOp::Add)
        }
        "sub" => {
            want(3)?;
            alu3(p, AluOp::Sub)
        }
        "mul" => {
            want(3)?;
            alu3(p, AluOp::Mul)
        }
        "div" => {
            want(3)?;
            alu3(p, AluOp::Div)
        }
        "rem" => {
            want(3)?;
            alu3(p, AluOp::Rem)
        }
        "and" => {
            want(3)?;
            alu3(p, AluOp::And)
        }
        "or" => {
            want(3)?;
            alu3(p, AluOp::Or)
        }
        "xor" => {
            want(3)?;
            alu3(p, AluOp::Xor)
        }
        "sll" => {
            want(3)?;
            alu3(p, AluOp::Sll)
        }
        "srl" => {
            want(3)?;
            alu3(p, AluOp::Srl)
        }
        "sra" => {
            want(3)?;
            alu3(p, AluOp::Sra)
        }
        "slt" => {
            want(3)?;
            alu3(p, AluOp::Slt)
        }
        "sltu" => {
            want(3)?;
            alu3(p, AluOp::Sltu)
        }
        "li" => {
            want(2)?;
            let rd = p.reg(args[0], line)?;
            let Some(v) = parse_imm(args[1]) else {
                return err(line, format!("bad immediate `{}`", args[1]));
            };
            p.asm.li(rd, v);
            Ok(())
        }
        "la" => {
            want(2)?;
            let rd = p.reg(args[0], line)?;
            let Some(&base) = p.data.get(args[1]) else {
                return err(line, format!("unknown data block `{}`", args[1]));
            };
            p.asm.li(rd, base as i64);
            Ok(())
        }
        "mov" => {
            want(2)?;
            let rd = p.reg(args[0], line)?;
            let rs = p.reg(args[1], line)?;
            p.asm.mov(rd, rs);
            Ok(())
        }
        "ld" | "ldb" => {
            want(2)?;
            let rd = p.reg(args[0], line)?;
            let (base, offset) = parse_mem(args[1], line)?;
            if mnemonic.eq_ignore_ascii_case("ld") {
                p.asm.ld(rd, base, offset);
            } else {
                p.asm.ldb(rd, base, offset);
            }
            Ok(())
        }
        "st" | "stb" => {
            want(2)?;
            let src = p.reg(args[0], line)?;
            let (base, offset) = parse_mem(args[1], line)?;
            if mnemonic.eq_ignore_ascii_case("st") {
                p.asm.st(src, base, offset);
            } else {
                p.asm.stb(src, base, offset);
            }
            Ok(())
        }
        "beq" => {
            want(3)?;
            branch(p, Cond::Eq)
        }
        "bne" => {
            want(3)?;
            branch(p, Cond::Ne)
        }
        "blt" => {
            want(3)?;
            branch(p, Cond::Lt)
        }
        "ble" => {
            want(3)?;
            branch(p, Cond::Le)
        }
        "bgt" => {
            want(3)?;
            branch(p, Cond::Gt)
        }
        "bge" => {
            want(3)?;
            branch(p, Cond::Ge)
        }
        "jmp" => {
            want(1)?;
            let target = p.label(args[0]);
            p.asm.jmp(target);
            Ok(())
        }
        "call" => {
            want(1)?;
            let target = p.label(args[0]);
            p.asm.call(target);
            Ok(())
        }
        "ret" => {
            want(0)?;
            p.asm.ret();
            Ok(())
        }
        "jr" => {
            want(1)?;
            let rs = p.reg(args[0], line)?;
            p.asm.jr(rs);
            Ok(())
        }
        "fadd" => {
            want(3)?;
            fp3(p, FpOp::Add)
        }
        "fsub" => {
            want(3)?;
            fp3(p, FpOp::Sub)
        }
        "fmul" => {
            want(3)?;
            fp3(p, FpOp::Mul)
        }
        "fdiv" => {
            want(3)?;
            fp3(p, FpOp::Div)
        }
        "itof" => {
            want(2)?;
            let fd = p.reg(args[0], line)?;
            let fs = p.reg(args[1], line)?;
            p.asm.fp(FpOp::Itof, fd, fs, crate::reg::ZERO);
            Ok(())
        }
        "ftoi" => {
            want(2)?;
            let rd = p.reg(args[0], line)?;
            let fs = p.reg(args[1], line)?;
            p.asm.fp(FpOp::Ftoi, rd, fs, crate::reg::ZERO);
            Ok(())
        }
        "halt" => {
            want(0)?;
            p.asm.halt();
            Ok(())
        }
        "nop" => {
            want(0)?;
            p.asm.nop();
            Ok(())
        }
        other => err(line, format!("unknown mnemonic `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;
    use crate::reg;

    #[test]
    fn register_names() {
        assert_eq!(parse_reg("t0"), Some(reg::T0));
        assert_eq!(parse_reg("SP"), Some(reg::SP));
        assert_eq!(parse_reg("r31"), Some(reg::S11));
        assert_eq!(parse_reg("a5"), Some(reg::A5));
        assert_eq!(parse_reg("s11"), Some(reg::S11));
        assert_eq!(parse_reg("f7"), Some(reg::F7));
        assert_eq!(parse_reg("zero"), Some(reg::ZERO));
        assert_eq!(parse_reg("x9"), None);
        assert_eq!(parse_reg("t10"), None);
        assert_eq!(parse_reg("r32"), None);
    }

    #[test]
    fn parses_a_small_program() {
        let src = r"
            ; sum the table
            .word table, 3, 1, 4, 1, 5
            main:
                la   gp, table
                li   t0, 0
                li   s1, 0
            loop:
                sll  t1, t0, 3
                add  t1, t1, gp
                ld   t2, 0(t1)
                add  s1, s1, t2
                addi t0, t0, 1
                blt  t0, 5, loop
                st   s1, 0x2000(zero)
                halt
        ";
        let program = parse_asm(src).expect("parses");
        assert_eq!(program.code.len(), 11);
        // And it runs correctly.
        let listing = program.listing();
        assert!(listing.contains("main:"));
        assert!(listing.contains("loop:"));
        assert!(matches!(program.code[10], Op::Halt));
    }

    #[test]
    fn forward_labels_and_calls() {
        let src = r"
            main:
                call f
                halt
            f:  addi a0, a0, 1
                ret
        ";
        let program = parse_asm(src).expect("parses");
        assert_eq!(program.code[0], Op::Call { target: 2 });
        assert_eq!(program.code[3], Op::Ret);
    }

    #[test]
    fn memory_operands() {
        let src = "ld t0, -8(sp)\nst t0, (gp)\nstb t1, 5(t2)\nhalt";
        let program = parse_asm(src).expect("parses");
        assert_eq!(
            program.code[0],
            Op::Load {
                rd: reg::T0,
                base: reg::SP,
                offset: -8,
                width: crate::Width::Word
            }
        );
        assert_eq!(
            program.code[1],
            Op::Store {
                src: reg::T0,
                base: reg::GP,
                offset: 0,
                width: crate::Width::Word
            }
        );
    }

    #[test]
    fn hex_immediates() {
        let program = parse_asm("li t0, 0xff\nli t1, -0x10\nhalt").unwrap();
        assert_eq!(
            program.code[0],
            Op::Li {
                rd: reg::T0,
                imm: 255
            }
        );
        assert_eq!(
            program.code[1],
            Op::Li {
                rd: reg::T1,
                imm: -16
            }
        );
    }

    #[test]
    fn fp_instructions() {
        let program = parse_asm("itof f0, t0\nfadd f1, f0, f0\nftoi t1, f1\nhalt").unwrap();
        assert!(matches!(program.code[0], Op::Fp { op: FpOp::Itof, .. }));
        assert!(matches!(program.code[1], Op::Fp { op: FpOp::Add, .. }));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_asm("nop\nfrob t0\nhalt").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frob"));
        assert!(e.to_string().contains("line 2"));

        let e = parse_asm("add t0, t1").unwrap_err();
        assert!(e.message.contains("expects 3"));

        let e = parse_asm("ld q9, 0(sp)").unwrap_err();
        assert!(e.message.contains("q9"));
    }

    #[test]
    fn unresolved_label_is_an_error() {
        let e = parse_asm("jmp nowhere\nhalt").unwrap_err();
        assert!(e.message.contains("never bound"), "{e}");
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let e = parse_asm("x:\nnop\nx:\nhalt").unwrap_err();
        assert!(e.message.contains("twice"));
    }

    #[test]
    fn zero_directive_and_la() {
        let src = ".zero buf, 4\nla t0, buf\nhalt";
        let program = parse_asm(src).unwrap();
        assert_eq!(
            program.code[0],
            Op::Li {
                rd: reg::T0,
                imm: crate::DATA_BASE as i64
            }
        );
    }

    #[test]
    fn parsed_program_executes_correctly() {
        // End-to-end: parse, emulate, check the store.
        let src = r"
            .word ten, 10
            la t0, ten
            ld t1, 0(t0)
            mul t1, t1, 7
            st t1, 0x3000(zero)
            halt
        ";
        let program = parse_asm(src).unwrap();
        // Avoid a dev-dependency cycle with pp-func: execute by hand using
        // the shared eval helpers is overkill here; just sanity-check
        // structure. Full execution is covered in integration tests.
        assert_eq!(program.code.len(), 5);
        assert_eq!(program.data.len(), 1);
    }
}
