//! Parser robustness: arbitrary text never panics, and programs built
//! with the DSL round-trip through equivalent textual source.

use pp_isa::{parse_asm, reg, Asm, Op, Operand};
use pp_testutil::{cases, Rng};

/// Arbitrary printable-ish text: a mix of ASCII (printable + whitespace)
/// and multi-byte unicode, the same space proptest's `\PC*` explored.
fn arbitrary_text(rng: &mut Rng) -> String {
    let len = rng.in_range(0..120);
    (0..len)
        .map(|_| match rng.below(12) {
            0 => char::from(rng.any_u8() & 0x7f),          // any 7-bit byte
            1 => *rng.pick(&['\n', '\t', ' ', ',']),       // structure chars
            2 => *rng.pick(&['é', 'λ', '漢', '🦀']),       // multi-byte
            _ => char::from(0x20 + (rng.any_u8() % 0x5f)), // printable ASCII
        })
        .collect()
}

/// The parser returns Ok or Err on any input — it never panics.
#[test]
fn arbitrary_text_never_panics() {
    cases(512, |rng| {
        let src = arbitrary_text(rng);
        let _ = parse_asm(&src);
    });
}

/// Lines made of plausible assembly tokens never panic either.
#[test]
fn token_soup_never_panics() {
    const HEADS: [&str; 9] = [
        "add", "ld", "st", "beq", "jmp", "li", ".word", ".zero", "label:",
    ];
    const TAIL_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789, ()-";
    cases(512, |rng| {
        let lines = rng.vec_of(0..20, |r| {
            let mut line = (*r.pick(&HEADS)).to_string();
            if r.flip() {
                line.push(' ');
                let n = r.in_range(0..21);
                line.extend((0..n).map(|_| char::from(*r.pick(TAIL_CHARS))));
            }
            line
        });
        let src = lines.join("\n");
        let _ = parse_asm(&src);
    });
}

#[test]
fn textual_and_dsl_programs_are_equivalent() {
    // The same program written both ways must produce identical code.
    let text = r"
        .word nums, 7, 9
        la   gp, nums
        ld   t0, 0(gp)
        ld   t1, 8(gp)
        add  t2, t0, t1
        st   t2, 16(gp)
        halt
    ";
    let parsed = parse_asm(text).unwrap();

    let mut a = Asm::new();
    let nums = a.alloc_words(&[7, 9]);
    a.li(reg::GP, nums as i64);
    a.ld(reg::T0, reg::GP, 0);
    a.ld(reg::T1, reg::GP, 8);
    a.add(reg::T2, reg::T0, reg::T1);
    a.st(reg::T2, reg::GP, 16);
    a.halt();
    let built = a.assemble().unwrap();

    assert_eq!(parsed.code, built.code);
    assert_eq!(parsed.data, built.data);
}

#[test]
fn every_mnemonic_parses() {
    let text = r"
        .zero buf, 4
        top:
        add  t0, t1, t2
        addi t0, t0, 1
        sub  t0, t1, 5
        mul  t0, t1, t2
        div  t0, t1, t2
        rem  t0, t1, t2
        and  t0, t1, 255
        or   t0, t1, t2
        xor  t0, t1, t2
        sll  t0, t1, 3
        srl  t0, t1, 3
        sra  t0, t1, 3
        slt  t0, t1, t2
        sltu t0, t1, t2
        li   t0, -42
        la   t1, buf
        mov  t2, t0
        ld   t3, 0(t1)
        ldb  t4, 1(t1)
        st   t3, 8(t1)
        stb  t4, 9(t1)
        beq  t0, t1, top
        bne  t0, 0, top
        blt  t0, t1, top
        ble  t0, t1, top
        bgt  t0, t1, top
        bge  t0, t1, top
        call func
        jmp  end
        func:
        nop
        ret
        end:
        itof f0, t0
        fadd f1, f0, f0
        fsub f2, f1, f0
        fmul f3, f1, f2
        fdiv f4, f3, f1
        ftoi t5, f4
        halt
    ";
    let program = parse_asm(text).expect("every mnemonic parses");
    assert!(matches!(program.code.last(), Some(Op::Halt)));
    assert_eq!(
        program.code[2],
        Op::Alu {
            op: pp_isa::AluOp::Sub,
            rd: reg::T0,
            rs1: reg::T1,
            src2: Operand::imm(5)
        }
    );
}
