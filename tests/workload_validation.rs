//! Cross-crate validation: every SPECint95-analog workload, co-simulated
//! against the functional emulator, in monopath and eager modes. Wrong
//! paths must be architecturally invisible for *real* programs, not just
//! unit-test kernels.

use polypath::core::{ConfidenceKind, ExecMode, SimConfig, Simulator};
use polypath::func::Emulator;
use polypath::workloads::Workload;

/// Small scale so debug-mode co-simulation stays fast.
fn small_scale(w: Workload) -> u64 {
    (w.default_scale() / 25).max(4)
}

fn check(w: Workload, cfg: SimConfig, name: &str) {
    let program = w.build(small_scale(w));
    let mut sim = Simulator::new(&program, cfg.with_commit_checking());
    let stats = sim.run();
    assert!(!stats.hit_cycle_limit, "{w}/{name}: cycle limit");
    let mut emu = Emulator::new(&program);
    emu.run(1_000_000_000).expect("reference halts");
    assert!(
        sim.memory().same_contents(emu.memory()),
        "{w}/{name}: final memory differs from functional reference"
    );
    assert!(
        stats.committed_instructions > 1_000,
        "{w}/{name}: too little work"
    );
}

#[test]
fn all_workloads_cosimulate_monopath() {
    for w in Workload::ALL {
        check(w, SimConfig::monopath_baseline(), "monopath");
    }
}

#[test]
fn all_workloads_cosimulate_see_jrs() {
    for w in Workload::ALL {
        check(w, SimConfig::baseline(), "see-jrs");
    }
}

#[test]
fn all_workloads_cosimulate_see_oracle() {
    for w in Workload::ALL {
        check(
            w,
            SimConfig::baseline().with_confidence(ConfidenceKind::Oracle),
            "see-oracle",
        );
    }
}

#[test]
fn all_workloads_cosimulate_dual_path() {
    for w in Workload::ALL {
        check(
            w,
            SimConfig::baseline().with_mode(ExecMode::DualPath),
            "dual",
        );
    }
}

#[test]
fn workload_results_mode_independent() {
    // The committed instruction count is architectural: identical across
    // execution models.
    for w in Workload::ALL {
        let program = w.build(small_scale(w));
        let mono = Simulator::new(&program, SimConfig::monopath_baseline()).run();
        let see = Simulator::new(&program, SimConfig::baseline()).run();
        assert_eq!(
            mono.committed_instructions, see.committed_instructions,
            "{w}: committed count differs between modes"
        );
        assert_eq!(mono.committed_branches, see.committed_branches, "{w}");
    }
}

#[test]
fn workloads_are_deterministic() {
    for w in Workload::ALL {
        let s1 = Simulator::new(&w.build(small_scale(w)), SimConfig::baseline()).run();
        let s2 = Simulator::new(&w.build(small_scale(w)), SimConfig::baseline()).run();
        assert_eq!(s1.cycles, s2.cycles, "{w}: nondeterministic simulation");
        assert_eq!(s1.fetched_instructions, s2.fetched_instructions, "{w}");
    }
}
