//! Qualitative paper claims, asserted at reduced scale.
//!
//! These tests pin the *shape* of the paper's results: orderings,
//! signs of effects, and resource-limit behaviours — not absolute IPC.

use polypath::core::{ConfidenceKind, ExecMode, PredictorKind, SimConfig, SimStats, Simulator};
use polypath::workloads::Workload;

fn run(w: Workload, cfg: SimConfig, scale_div: u64) -> SimStats {
    let program = w.build((w.default_scale() / scale_div).max(4));
    Simulator::new(&program, cfg).run()
}

#[test]
fn oracle_dominates_everything_on_go() {
    let w = Workload::Go;
    let mono = run(w, SimConfig::monopath_baseline(), 10);
    let see = run(w, SimConfig::baseline(), 10);
    let see_oracle = run(
        w,
        SimConfig::baseline().with_confidence(ConfidenceKind::Oracle),
        10,
    );
    let oracle = run(
        w,
        SimConfig::monopath_baseline().with_predictor(PredictorKind::Oracle),
        10,
    );
    // Fig. 8 ordering on the most misprediction-bound benchmark.
    assert!(oracle.ipc() > see_oracle.ipc(), "oracle > SEE/oracle");
    assert!(see_oracle.ipc() > see.ipc(), "SEE/oracle > SEE/JRS");
    assert!(see.ipc() > mono.ipc(), "SEE/JRS > monopath on go");
}

#[test]
fn see_gain_tracks_misprediction_rate() {
    // go (worst-predicted) must benefit more from SEE than vortex
    // (best-predicted) — the core premise of *selective* eager execution.
    let gain = |w: Workload| {
        let mono = run(w, SimConfig::monopath_baseline(), 10);
        let see = run(w, SimConfig::baseline(), 10);
        see.ipc() / mono.ipc()
    };
    let go = gain(Workload::Go);
    let vortex = gain(Workload::Vortex);
    assert!(
        go > vortex,
        "SEE gain on go ({go:.3}) must exceed vortex ({vortex:.3})"
    );
    assert!(go > 1.05, "go must benefit noticeably, got {go:.3}");
}

#[test]
fn dual_path_captures_part_of_see_gain() {
    let w = Workload::Go;
    let mono = run(w, SimConfig::monopath_baseline(), 10).ipc();
    let see = run(
        w,
        SimConfig::baseline().with_confidence(ConfidenceKind::Oracle),
        10,
    )
    .ipc();
    let dual = run(
        w,
        SimConfig::baseline()
            .with_mode(ExecMode::DualPath)
            .with_confidence(ConfidenceKind::Oracle),
        10,
    )
    .ipc();
    assert!(dual > mono, "dual-path beats monopath");
    assert!(
        dual < see,
        "full SEE beats dual-path when divergences overlap"
    );
    let fraction = (dual - mono) / (see - mono);
    assert!(
        (0.2..1.0).contains(&fraction),
        "dual-path fraction {fraction:.2} out of plausible range"
    );
}

#[test]
fn deeper_pipelines_amplify_sees_advantage() {
    // Fig. 12: the relative SEE gain grows with pipeline depth.
    let w = Workload::Go;
    let gain_at = |depth: usize| {
        let mono = run(
            w,
            SimConfig::monopath_baseline().with_pipeline_depth(depth),
            10,
        );
        let see = run(
            w,
            SimConfig::baseline()
                .with_confidence(ConfidenceKind::Oracle)
                .with_pipeline_depth(depth),
            10,
        );
        see.ipc() / mono.ipc()
    };
    let shallow = gain_at(6);
    let deep = gain_at(10);
    assert!(
        deep > shallow,
        "SEE gain at 10 stages ({deep:.3}) must exceed 6 stages ({shallow:.3})"
    );
}

#[test]
fn see_survives_one_functional_unit_of_each_type() {
    // Fig. 11: SEE still wins with a starved execution core.
    let w = Workload::Go;
    let fus = polypath::core::FuConfig::uniform(1);
    let mono = run(w, SimConfig::monopath_baseline().with_fus(fus), 10);
    let see = run(
        w,
        SimConfig::baseline()
            .with_confidence(ConfidenceKind::Oracle)
            .with_fus(fus),
        10,
    );
    assert!(
        see.ipc() > mono.ipc(),
        "SEE ({:.3}) must beat monopath ({:.3}) even with 1 FU of each type",
        see.ipc(),
        mono.ipc()
    );
}

#[test]
fn see_beats_monopath_at_small_windows() {
    // Fig. 10: SEE's advantage persists with a 64-entry window.
    let w = Workload::Go;
    let mk = |cfg: SimConfig| {
        let mut cfg = cfg.with_window_size(64);
        cfg.ctx_positions = 32;
        cfg
    };
    let mono = run(w, mk(SimConfig::monopath_baseline()), 10);
    let see = run(
        w,
        mk(SimConfig::baseline().with_confidence(ConfidenceKind::Oracle)),
        10,
    );
    assert!(see.ipc() > mono.ipc());
}

#[test]
fn bigger_predictors_reduce_mispredictions() {
    // Fig. 9 x-axis premise (8 vs 14 bits: the small table aliases
    // heavily). gcc re-visits the
    // same (pc, history) points, so its tables warm up at reduced scale.
    let w = Workload::Gcc;
    let small = run(
        w,
        SimConfig::monopath_baseline().with_predictor(PredictorKind::Gshare { history_bits: 8 }),
        3,
    );
    let large = run(
        w,
        SimConfig::monopath_baseline().with_predictor(PredictorKind::Gshare { history_bits: 14 }),
        3,
    );
    assert!(
        large.mispredict_rate() < small.mispredict_rate(),
        "14-bit gshare ({:.3}) must mispredict less than 8-bit ({:.3})",
        large.mispredict_rate(),
        small.mispredict_rate()
    );
}

#[test]
fn path_utilization_is_moderate() {
    // §5.2: SEE uses few paths most of the time.
    let see = run(Workload::Gcc, SimConfig::baseline(), 10);
    assert!(see.mean_active_paths() >= 1.0);
    assert!(
        see.paths_at_most(8) > 0.9,
        "≤8 paths should cover >90% of cycles, got {:.2}",
        see.paths_at_most(8)
    );
}

#[test]
fn confidence_estimator_statistics_consistent() {
    let see = run(Workload::Compress, SimConfig::baseline(), 10);
    let total = see.low_conf_correct
        + see.low_conf_incorrect
        + see.high_conf_correct
        + see.high_conf_incorrect;
    assert_eq!(total, see.committed_branches);
    assert!(see.pvn() > 0.0 && see.pvn() < 1.0);
    assert!(see.sensitivity() > 0.0 && see.sensitivity() <= 1.0);
}

#[test]
fn oracle_runs_never_mispredict() {
    for w in [Workload::Perl, Workload::Xlisp] {
        let s = run(
            w,
            SimConfig::monopath_baseline().with_predictor(PredictorKind::Oracle),
            20,
        );
        assert_eq!(s.mispredicted_branches, 0, "{w}");
        assert_eq!(
            s.recoveries, s.mispredicted_returns,
            "{w}: only RAS recoveries allowed"
        );
    }
}
